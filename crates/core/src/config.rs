//! Solver configuration.
//!
//! Every knob the paper ablates is a field here, so the experiment harness
//! can regenerate Figs. 4–7 by toggling a `Config` rather than recompiling.

pub use lazymc_lazygraph::PrePopulate;

/// Which vertex relabelling the solver uses (paper §IV-F).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OrderKind {
    /// Sort by (coreness asc, degree asc) — the paper's parallel-friendly
    /// order (no unique peeling order exists under parallel k-core).
    #[default]
    CorenessDegree,
    /// The Matula–Beck peeling order itself, which sequential solvers get
    /// for free and which bounds every right-neighbourhood by coreness.
    /// Forces an exact sequential k-core (the floor optimization does not
    /// produce a peel order).
    Peeling,
}

/// Configuration of a [`crate::LazyMc`] run.
#[derive(Debug, Clone, PartialEq)]
pub struct Config {
    /// Worker threads; `0` uses the process-global rayon pool as-is.
    pub threads: usize,
    /// How many of the highest-degree vertices the degree-based heuristic
    /// search expands (paper Alg. 5, "top-K").
    pub top_k: usize,
    /// Density threshold φ for algorithmic choice (paper Alg. 8 line 14):
    /// filtered subgraphs denser than this go to the k-VC solver, the rest
    /// to direct MC search. Paper §V-B uses 0.5; Fig. 6 sweeps it.
    pub density_threshold: f64,
    /// Enable the early-exit intersection kernels (Fig. 5 ablation: when
    /// false, plain full intersections are used everywhere).
    pub early_exit: bool,
    /// Enable the *second* early exit of `intersect-size-gt-bool`
    /// (Fig. 5 ablation).
    pub second_exit: bool,
    /// Lazy-graph pre-population policy (Fig. 4 ablation).
    pub prepopulate: PrePopulate,
    /// Probe one low-coreness vertex per degeneracy level before the main
    /// high-to-low sweep (paper Alg. 7's first phase; helps gap-heavy
    /// graphs establish a good incumbent early).
    pub low_core_probes: bool,
    /// Compute coreness with the incumbent-size floor (the paper's
    /// `KCore(G, |C*|)`), skipping exact coreness for vertices that the
    /// degree-heuristic incumbent already rules out.
    pub kcore_floor: bool,
    /// Rounds of induced-degree filtering in `NeighborSearch` (≥ 1). The
    /// paper finds two sufficient ("the filtering could be repeated until
    /// no further vertices are removed"); this knob lets the ablation
    /// harness test 1..4.
    pub filter_rounds: usize,
    /// Vertex relabelling strategy.
    pub order: OrderKind,
    /// MC-BRB-style iterated degree reduction on the extracted subgraph
    /// before dispatching a detailed search — the extension the paper
    /// names in §V-A ("these rules could be easily added to LazyMC").
    /// Off by default to stay faithful to the evaluated system.
    pub subgraph_reduction: bool,
    /// Optional wall-clock budget. When it expires the solver stops
    /// starting new neighbourhood searches and returns the best clique
    /// found so far, flagged as inexact (the paper's 30-minute timeout
    /// discipline, usable in-process).
    pub time_budget: Option<std::time::Duration>,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            threads: 0,
            top_k: 32,
            density_threshold: 0.5,
            early_exit: true,
            second_exit: true,
            prepopulate: PrePopulate::Must,
            low_core_probes: true,
            kcore_floor: true,
            filter_rounds: 2,
            order: OrderKind::CorenessDegree,
            subgraph_reduction: false,
            time_budget: None,
        }
    }
}

impl Config {
    /// The one hard ceiling for every thread request in the system —
    /// client-supplied `threads` in the query daemon, `--threads` on the
    /// CLI and bench harness, and the daemon's own worker pools all clamp
    /// against this single definition (they used to disagree). Beyond
    /// ~2× the machine's parallelism there is no speedup, only a
    /// thread-spawn DoS; the floor of 8 keeps small machines accepting
    /// modest oversubscription (useful for tests and latency hiding).
    pub fn thread_cap() -> usize {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .saturating_mul(2)
            .max(8)
    }

    /// Clamps a requested thread count to [`Config::thread_cap`]
    /// (`0` — "use the ambient pool" — passes through unchanged).
    pub fn clamp_threads(threads: usize) -> usize {
        threads.min(Self::thread_cap())
    }

    /// The intra-solve width of a job running on the machine-wide
    /// scheduler, given the pool's worker count: the configured thread
    /// count (clamped as ever), or — for `threads = 0`, "use whatever is
    /// there" — the pool capacity itself. This replaces the old static
    /// per-job thread share: capacity is a property of the *pool*, asked
    /// at solve time, not a number frozen into the config.
    pub fn sched_width(&self, pool_workers: usize) -> usize {
        match self.threads {
            0 => pool_workers.max(1),
            t => Self::clamp_threads(t).max(1),
        }
    }

    /// A configuration with every work-avoidance feature disabled — the
    /// "naive eager" end of the ablation spectrum.
    pub fn no_work_avoidance() -> Self {
        Config {
            early_exit: false,
            second_exit: false,
            prepopulate: PrePopulate::All,
            low_core_probes: false,
            kcore_floor: false,
            ..Config::default()
        }
    }

    /// Sequential configuration (1 thread).
    pub fn sequential() -> Self {
        Config {
            threads: 1,
            ..Config::default()
        }
    }

    /// Sets the thread count (builder style).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Sets the density threshold (builder style).
    pub fn with_density_threshold(mut self, phi: f64) -> Self {
        self.density_threshold = phi;
        self
    }

    /// Canonical text encoding of every semantic field, stable across runs
    /// and platforms. Two configs with the same key request the same
    /// search; the service layer keys its result cache on
    /// `(graph fingerprint, canonical_key)`. `threads` is *excluded*: the
    /// thread count changes cost, never the answer.
    pub fn canonical_key(&self) -> String {
        format!(
            "v1;top_k={};phi={};ee={};se={};pp={};probes={};floor={};rounds={};order={};red={};budget={}",
            self.top_k,
            self.density_threshold,
            u8::from(self.early_exit),
            u8::from(self.second_exit),
            match self.prepopulate {
                PrePopulate::None => "none",
                PrePopulate::Must => "must",
                PrePopulate::All => "all",
            },
            u8::from(self.low_core_probes),
            u8::from(self.kcore_floor),
            self.filter_rounds,
            match self.order {
                OrderKind::CorenessDegree => "cd",
                OrderKind::Peeling => "peel",
            },
            u8::from(self.subgraph_reduction),
            match self.time_budget {
                None => "none".to_string(),
                Some(d) => format!("{}ns", d.as_nanos()),
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper() {
        let c = Config::default();
        assert!(c.early_exit && c.second_exit);
        assert_eq!(c.density_threshold, 0.5);
        assert_eq!(c.prepopulate, PrePopulate::Must);
    }

    #[test]
    fn builders_compose() {
        let c = Config::sequential()
            .with_density_threshold(0.1)
            .with_threads(4);
        assert_eq!(c.threads, 4);
        assert_eq!(c.density_threshold, 0.1);
    }

    #[test]
    fn thread_cap_is_the_single_clamp() {
        let cap = Config::thread_cap();
        // At least the floor, at least 2× the machine.
        assert!(cap >= 8);
        let machine = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        assert!(cap >= machine * 2);
        // Clamping: identity below the cap, the cap above it, 0 unchanged.
        assert_eq!(Config::clamp_threads(0), 0);
        assert_eq!(Config::clamp_threads(1), 1);
        assert_eq!(Config::clamp_threads(cap), cap);
        assert_eq!(Config::clamp_threads(cap + 1), cap);
        assert_eq!(Config::clamp_threads(usize::MAX), cap);
    }

    #[test]
    fn sched_width_queries_capacity_only_when_unpinned() {
        // threads = 0 means "whatever the pool has"; a pinned count wins
        // (clamped), and the result is always at least 1.
        let ambient = Config::default();
        assert_eq!(ambient.sched_width(6), 6);
        assert_eq!(ambient.sched_width(0), 1);
        let pinned = Config::default().with_threads(3);
        assert_eq!(pinned.sched_width(16), 3);
        let huge = Config::default().with_threads(usize::MAX);
        assert_eq!(huge.sched_width(4), Config::thread_cap());
    }

    #[test]
    fn canonical_key_is_stable_and_discriminating() {
        let a = Config::default();
        assert_eq!(a.canonical_key(), Config::default().canonical_key());
        // Thread count never changes the answer, so it is not in the key.
        assert_eq!(a.canonical_key(), Config::sequential().canonical_key());
        // Every semantic field is.
        let variants = vec![
            Config {
                top_k: 1,
                ..a.clone()
            },
            a.clone().with_density_threshold(0.25),
            Config {
                early_exit: false,
                ..a.clone()
            },
            Config {
                second_exit: false,
                ..a.clone()
            },
            Config {
                prepopulate: PrePopulate::All,
                ..a.clone()
            },
            Config {
                low_core_probes: false,
                ..a.clone()
            },
            Config {
                kcore_floor: false,
                ..a.clone()
            },
            Config {
                filter_rounds: 3,
                ..a.clone()
            },
            Config {
                order: OrderKind::Peeling,
                ..a.clone()
            },
            Config {
                subgraph_reduction: true,
                ..a.clone()
            },
            Config {
                time_budget: Some(std::time::Duration::from_millis(5)),
                ..a.clone()
            },
        ];
        let mut keys: Vec<String> = variants.iter().map(Config::canonical_key).collect();
        keys.push(a.canonical_key());
        let before = keys.len();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), before, "canonical keys must be distinct");
    }
}
