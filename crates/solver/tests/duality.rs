//! Cross-solver property tests on random graphs:
//!
//! * ω(G) = |V| − minVC(Ḡ) (the equivalence LazyMC's algorithmic choice
//!   rests on, paper §II-B);
//! * the direct MC engine and the VC-based engine agree;
//! * the greedy coloring number always upper-bounds ω;
//! * decisions are monotone in k.

use lazymc_graph::gen;
use lazymc_solver::bitset::{BitMatrix, Bitset};
use lazymc_solver::{
    greedy_color_count, max_clique_dense_scratch, max_clique_exact, max_clique_via_vc,
    max_clique_via_vc_scratch, min_vertex_cover, vc::is_vertex_cover, vertex_cover_decision,
    McScratch, VcSolveScratch,
};
use proptest::prelude::*;

fn arb_matrix() -> impl Strategy<Value = BitMatrix> {
    (2usize..28, 0.0f64..0.8, 0u64..10_000).prop_map(|(n, p, seed)| {
        let g = gen::gnp(n, p, seed);
        BitMatrix::from_csr(&g)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn clique_cover_duality(m in arb_matrix()) {
        let omega = max_clique_exact(&m).len();
        let comp = m.complement();
        let mvc = min_vertex_cover(&comp, None);
        prop_assert!(is_vertex_cover(&comp, &Bitset::full(m.len()), &mvc));
        prop_assert_eq!(omega, m.len() - mvc.len());
    }

    #[test]
    fn vc_engine_agrees_with_direct_mc(m in arb_matrix()) {
        let direct = max_clique_exact(&m);
        let via = max_clique_via_vc(&m, 0, None).expect("omega >= 1 > 0");
        prop_assert_eq!(direct.len(), via.len());
        prop_assert!(m.is_clique(&via));
        prop_assert!(m.is_clique(&direct));
        // and with a lower bound exactly at / above omega
        prop_assert!(max_clique_via_vc(&m, direct.len(), None).is_none());
        if direct.len() > 1 {
            let again = max_clique_via_vc(&m, direct.len() - 1, None).unwrap();
            prop_assert_eq!(again.len(), direct.len());
        }
    }

    #[test]
    fn scratch_paths_agree_with_one_shot_engines(m in arb_matrix()) {
        // The PR-3 refactor guard: the one-shot engines and the reused
        // scratch-arena paths must report the same omega on random G(n,p)
        // across densities — including when the *same* arena is fed a
        // second, different-size problem right after (stale-state check).
        let omega = max_clique_exact(&m).len();
        let within = Bitset::full(m.len());
        let mut mc_scratch = McScratch::new();
        let mut vc_scratch = VcSolveScratch::new();
        let mut out = Vec::new();

        prop_assert!(max_clique_dense_scratch(&m, &within, 0, None, &mut mc_scratch, &mut out));
        prop_assert_eq!(out.len(), omega);
        prop_assert!(m.is_clique(&out));

        prop_assert!(max_clique_via_vc_scratch(&m, 0, None, &mut vc_scratch, &mut out));
        prop_assert_eq!(out.len(), omega);
        prop_assert!(m.is_clique(&out));

        // Re-solve a shifted instance through the now-warm arenas.
        let m2 = {
            let g = gen::gnp(m.len() + 5, 0.4, 1234);
            BitMatrix::from_csr(&g)
        };
        let omega2 = max_clique_exact(&m2).len();
        let within2 = Bitset::full(m2.len());
        prop_assert!(max_clique_dense_scratch(&m2, &within2, 0, None, &mut mc_scratch, &mut out));
        prop_assert_eq!(out.len(), omega2);
        prop_assert!(max_clique_via_vc_scratch(&m2, 0, None, &mut vc_scratch, &mut out));
        prop_assert_eq!(out.len(), omega2);

        // lb handling: both scratch engines stay silent at lb = omega.
        prop_assert!(!max_clique_dense_scratch(&m, &within, omega, None, &mut mc_scratch, &mut out));
        prop_assert!(!max_clique_via_vc_scratch(&m, omega, None, &mut vc_scratch, &mut out));
    }

    #[test]
    fn coloring_upper_bounds_omega(m in arb_matrix()) {
        let omega = max_clique_exact(&m).len();
        let colors = greedy_color_count(&m, &Bitset::full(m.len()));
        prop_assert!(colors >= omega, "colors {} < omega {}", colors, omega);
    }

    #[test]
    fn vc_decision_monotone_in_k(m in arb_matrix()) {
        let n = m.len();
        let mvc = min_vertex_cover(&m, None).len();
        for k in 0..=n {
            let feasible = vertex_cover_decision(&m, k, None).is_some();
            prop_assert_eq!(feasible, k >= mvc, "k={} mvc={}", k, mvc);
            if let Some(c) = vertex_cover_decision(&m, k, None) {
                prop_assert!(c.len() <= k);
                prop_assert!(is_vertex_cover(&m, &Bitset::full(n), &c));
            }
        }
    }

    #[test]
    fn mc_lower_bound_contract(m in arb_matrix()) {
        use lazymc_solver::max_clique_dense;
        let omega = max_clique_exact(&m).len();
        for lb in 0..omega + 2 {
            match max_clique_dense(&m, lb, None) {
                Some(c) => {
                    prop_assert!(c.len() > lb);
                    prop_assert_eq!(c.len(), omega);
                }
                None => prop_assert!(omega <= lb),
            }
        }
    }
}
