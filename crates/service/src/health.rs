//! Degraded-health tracking: the daemon's answer to non-fatal faults.
//!
//! A snapshot write failing with ENOSPC, or the job journal hitting an I/O
//! error, must not turn uploads and solves into 500s — the in-memory side
//! of both features keeps working. Instead the failing component records a
//! *degradation reason* here; `/healthz` reports `"state": "degraded"`
//! with the reasons, monitoring alerts on the `lazymc_degraded` gauge, and
//! the component clears its reason on the next success (disk freed,
//! journal re-enabled after an operator fixes the volume).
//!
//! Reasons are keyed by component (`"snapshot"`, `"journal"`, …): a
//! component flapping between ok and failing holds one slot, not a
//! growing list.

use crate::plock;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Shared degraded-state registry; one per [`crate::ServiceState`].
#[derive(Default)]
pub struct Health {
    reasons: Mutex<BTreeMap<&'static str, String>>,
    /// Times any component entered the degraded state (not per-flap
    /// refreshes of an existing reason).
    pub degraded_events: AtomicU64,
}

impl Health {
    pub fn new() -> Health {
        Health::default()
    }

    /// Marks `component` degraded with a human-readable reason. Updating
    /// an already-degraded component refreshes the reason without counting
    /// a new event.
    pub fn degrade(&self, component: &'static str, reason: String) {
        let mut reasons = plock(&self.reasons);
        if reasons.insert(component, reason).is_none() {
            self.degraded_events.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Clears `component`'s degradation (no-op if it was healthy).
    pub fn clear(&self, component: &'static str) {
        plock(&self.reasons).remove(component);
    }

    pub fn is_degraded(&self) -> bool {
        !plock(&self.reasons).is_empty()
    }

    /// `(component, reason)` pairs, ordered by component.
    pub fn reasons(&self) -> Vec<(&'static str, String)> {
        plock(&self.reasons)
            .iter()
            .map(|(k, v)| (*k, v.clone()))
            .collect()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn degrade_clear_lifecycle() {
        let h = Health::new();
        assert!(!h.is_degraded());
        h.degrade("snapshot", "disk full".into());
        h.degrade("journal", "EIO".into());
        assert!(h.is_degraded());
        assert_eq!(h.degraded_events.load(Ordering::Relaxed), 2);
        // Refreshing a reason is not a new event.
        h.degrade("snapshot", "still full".into());
        assert_eq!(h.degraded_events.load(Ordering::Relaxed), 2);
        assert_eq!(
            h.reasons(),
            vec![
                ("journal", "EIO".to_string()),
                ("snapshot", "still full".to_string())
            ]
        );
        h.clear("snapshot");
        h.clear("journal");
        assert!(!h.is_degraded());
        // Re-entering after a clear counts again.
        h.degrade("snapshot", "full again".into());
        assert_eq!(h.degraded_events.load(Ordering::Relaxed), 3);
    }
}
