//! Value-generation strategies (subset of proptest's `Strategy`).

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type. Object-safe so that
/// [`Union`] (the engine behind `prop_oneof!`) can hold mixed strategies.
pub trait Strategy {
    type Value: std::fmt::Debug;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f` (proptest's `prop_map`).
    fn prop_map<O: std::fmt::Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Always generates a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `any::<T>()` for the types the workspace asks for.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

pub trait Arbitrary {
    type Strategy: Strategy<Value = Self>;
    fn arbitrary() -> Self::Strategy;
}

/// Full-domain strategy backing [`any`].
pub struct ArbitraryOf<T>(std::marker::PhantomData<T>);

impl Arbitrary for bool {
    type Strategy = ArbitraryOf<bool>;
    fn arbitrary() -> Self::Strategy {
        ArbitraryOf(std::marker::PhantomData)
    }
}

impl Strategy for ArbitraryOf<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            type Strategy = ArbitraryOf<$t>;
            fn arbitrary() -> Self::Strategy {
                ArbitraryOf(std::marker::PhantomData)
            }
        }
        impl Strategy for ArbitraryOf<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize);

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: std::fmt::Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice among boxed strategies — the engine of `prop_oneof!`.
pub struct Union<V> {
    options: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V: std::fmt::Debug> Union<V> {
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        Union {
            options: Vec::new(),
        }
    }

    pub fn or<S: Strategy<Value = V> + 'static>(mut self, s: S) -> Self {
        self.options.push(Box::new(s));
        self
    }
}

impl<V: std::fmt::Debug> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        assert!(
            !self.options.is_empty(),
            "prop_oneof! needs at least one arm"
        );
        let i = (rng.next_u64() as usize) % self.options.len();
        self.options[i].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return lo + rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let v = self.start + unit * (self.end - self.start);
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range strategy");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
        lo + unit * (hi - lo)
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);
tuple_strategy!(A, B, C, D, E, F, G, H, I);
tuple_strategy!(A, B, C, D, E, F, G, H, I, J);
tuple_strategy!(A, B, C, D, E, F, G, H, I, J, K);
tuple_strategy!(A, B, C, D, E, F, G, H, I, J, K, L);
