//! Model-based property tests: `RoaringSet` must behave exactly like
//! `std::collections::BTreeSet<u32>` under arbitrary insert/remove
//! sequences, including across the array↔bitmap container conversions.

use lazymc_roaring::RoaringSet;
use proptest::prelude::*;
use std::collections::BTreeSet;

#[derive(Debug, Clone)]
enum Op {
    Insert(u32),
    Remove(u32),
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            (0u32..200_000).prop_map(Op::Insert),
            (0u32..200_000).prop_map(Op::Remove),
        ],
        0..600,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn matches_btreeset(ops in arb_ops()) {
        let mut model = BTreeSet::new();
        let mut sut = RoaringSet::new();
        for op in ops {
            match op {
                Op::Insert(k) => prop_assert_eq!(sut.insert(k), model.insert(k)),
                Op::Remove(k) => prop_assert_eq!(sut.remove(k), model.remove(&k)),
            }
        }
        prop_assert_eq!(sut.len(), model.len());
        let got: Vec<u32> = sut.iter().collect();
        let want: Vec<u32> = model.iter().copied().collect();
        prop_assert_eq!(got, want);
    }

    /// Force conversions by packing many keys into one chunk.
    #[test]
    fn single_chunk_conversions(keys in proptest::collection::vec(0u32..65_536, 0..6000)) {
        let mut model = BTreeSet::new();
        let mut sut = RoaringSet::new();
        for k in &keys {
            sut.insert(*k);
            model.insert(*k);
        }
        prop_assert_eq!(sut.len(), model.len());
        for k in 0..65_536u32 {
            prop_assert_eq!(sut.contains(k), model.contains(&k));
        }
    }
}
