//! k-vertex-cover branch-and-bound — the paper's algorithmic-choice solver.
//!
//! Filtered neighbourhoods are often extremely dense (paper §III-D), which
//! makes direct MC search expensive; their *complements* are sparse, and a
//! clique of size `s` in `G[N]` is exactly an independent set of size `s` in
//! the complement, i.e. a vertex cover of size `|N| - s`. The paper solves
//! such subgraphs by a per-neighbourhood binary search over k-VC decisions
//! (§IV-E), with a solver implementing:
//!
//! * the Buss kernel (vertices of degree > k are forced into the cover);
//! * kernelization of degree-0/1/2 vertices — only the non-merging degree-2
//!   case, as in the paper;
//! * a polynomial path/cycle solver once the maximum degree drops to 2;
//! * branching on a highest-degree vertex otherwise.
//!
//! Like the MC engine, the search keeps all per-depth state (the alive set
//! of every branch level, the row/seen scratch of the kernelization and
//! path/cycle solvers) in a reusable [`VcScratch`] arena, and the whole
//! clique-via-VC pipeline (complement matrix included) in a
//! [`VcSolveScratch`] — zero steady-state heap allocation per node.

use crate::bitset::{BitMatrix, Bitset};

/// Search statistics for work accounting.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct VcStats {
    /// Branch-and-bound tree nodes expanded.
    pub nodes: u64,
    /// Vertices removed (or forced into the cover) by the kernelization
    /// rules — Buss, degree-0/1 and the non-merging degree-2 case.
    pub reductions: u64,
}

/// Per-depth reusable buffer: the alive set owned by that branch level.
#[derive(Default)]
struct VcDepth {
    alive: Bitset,
}

/// Reusable arena for the k-VC decision search. Hold one per worker; after
/// warm-up no node expansion allocates.
#[derive(Default)]
pub struct VcScratch {
    depths: Vec<VcDepth>,
    row: Bitset,
    seen: Bitset,
    cycle: Vec<u32>,
}

impl VcScratch {
    /// An empty arena (buffers grow on first use).
    pub fn new() -> Self {
        Self::default()
    }

    /// Heap bytes retained by the arena (pool retention bound).
    pub fn heap_bytes(&self) -> usize {
        self.row.heap_bytes()
            + self.seen.heap_bytes()
            + self.cycle.capacity() * 4
            + self
                .depths
                .iter()
                .map(|d| d.alive.heap_bytes())
                .sum::<usize>()
    }
}

/// Reusable buffers for the full clique-via-VC pipeline: the complement
/// matrix, the decision search arena, and the binary-search bookkeeping.
#[derive(Default)]
pub struct VcSolveScratch {
    comp: BitMatrix,
    search: VcScratch,
    cover: Vec<u32>,
    best_cover: Vec<u32>,
    full: Bitset,
    avail: Bitset,
    row: Bitset,
    in_cover: Vec<bool>,
}

impl VcSolveScratch {
    /// An empty scratch (buffers grow on first use).
    pub fn new() -> Self {
        Self::default()
    }

    /// Heap bytes retained by the whole pipeline scratch.
    pub fn heap_bytes(&self) -> usize {
        self.comp.heap_bytes()
            + self.search.heap_bytes()
            + (self.cover.capacity() + self.best_cover.capacity()) * 4
            + self.full.heap_bytes()
            + self.avail.heap_bytes()
            + self.row.heap_bytes()
            + self.in_cover.capacity()
    }
}

/// Scratch-arena decision: cover of size ≤ `k` for `adj` restricted to
/// `alive`. On success the cover is written to `out` (cleared either way)
/// and `true` is returned.
pub fn vertex_cover_decision_scratch(
    adj: &BitMatrix,
    alive: &Bitset,
    k: usize,
    stats: Option<&mut VcStats>,
    scratch: &mut VcScratch,
    out: &mut Vec<u32>,
) -> bool {
    out.clear();
    if scratch.depths.is_empty() {
        scratch.depths.push(VcDepth::default());
    }
    scratch.depths[0].alive.copy_from(alive);
    let mut solver = VcSolver {
        adj,
        stats: VcStats::default(),
        scratch,
    };
    let ok = solver.solve(0, k as i64, out);
    let local = solver.stats;
    if let Some(s) = stats {
        s.nodes += local.nodes;
        s.reductions += local.reductions;
    }
    if !ok {
        out.clear();
    }
    ok
}

/// Decides whether `adj` (restricted to `alive`) has a vertex cover of size
/// at most `k`; on success returns the cover. One-shot convenience over
/// [`vertex_cover_decision_scratch`].
pub fn vertex_cover_decision_within(
    adj: &BitMatrix,
    alive: &Bitset,
    k: usize,
    stats: Option<&mut VcStats>,
) -> Option<Vec<u32>> {
    let mut scratch = VcScratch::default();
    let mut cover = Vec::new();
    vertex_cover_decision_scratch(adj, alive, k, stats, &mut scratch, &mut cover).then_some(cover)
}

/// Decides whether the whole graph has a vertex cover of size ≤ `k`.
pub fn vertex_cover_decision(
    adj: &BitMatrix,
    k: usize,
    stats: Option<&mut VcStats>,
) -> Option<Vec<u32>> {
    vertex_cover_decision_within(adj, &Bitset::full(adj.len()), k, stats)
}

/// Exact minimum vertex cover via binary search over the decision problem,
/// bracketed by a maximal-matching lower bound and a greedy upper bound.
pub fn min_vertex_cover(adj: &BitMatrix, stats: Option<&mut VcStats>) -> Vec<u32> {
    let n = adj.len();
    let alive = Bitset::full(n);
    let lb = matching_lower_bound(adj, &alive);
    let greedy = greedy_cover(adj, &alive);
    let mut best = greedy.clone();
    let (mut lo, mut hi) = (lb, greedy.len());
    let mut local = VcStats::default();
    let mut scratch = VcScratch::default();
    let mut cover = Vec::new();
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if vertex_cover_decision_scratch(
            adj,
            &alive,
            mid,
            Some(&mut local),
            &mut scratch,
            &mut cover,
        ) {
            hi = cover.len().min(mid);
            std::mem::swap(&mut best, &mut cover);
        } else {
            lo = mid + 1;
        }
    }
    if let Some(out) = stats {
        out.nodes += local.nodes;
        out.reductions += local.reductions;
    }
    best
}

/// Scratch-arena maximum clique of `adj` via minimum vertex cover of the
/// complement. Writes the witness into `out` and returns whether a clique
/// larger than `lb` exists. With a warm `scratch`, the entire pipeline —
/// complement matrix included — performs no heap allocation.
pub fn max_clique_via_vc_scratch(
    adj: &BitMatrix,
    lb: usize,
    stats: Option<&mut VcStats>,
    scratch: &mut VcSolveScratch,
    out: &mut Vec<u32>,
) -> bool {
    out.clear();
    let n = adj.len();
    if n == 0 || n <= lb {
        return false;
    }
    adj.complement_into(&mut scratch.comp);
    scratch.full.reset_full(n);
    let mut local = VcStats::default();
    // ω > lb ⟺ minVC(complement) <= n - lb - 1.
    let k0 = n - lb - 1;
    if !vertex_cover_decision_scratch(
        &scratch.comp,
        &scratch.full,
        k0,
        Some(&mut local),
        &mut scratch.search,
        &mut scratch.cover,
    ) {
        if let Some(s) = stats {
            s.nodes += local.nodes;
            s.reductions += local.reductions;
        }
        return false;
    }
    std::mem::swap(&mut scratch.best_cover, &mut scratch.cover);
    // Refine: binary search down to the true minimum to maximize the clique.
    let mut lo = matching_lower_bound_scratch(
        &scratch.comp,
        &scratch.full,
        &mut scratch.avail,
        &mut scratch.row,
    );
    let mut hi = scratch.best_cover.len();
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if vertex_cover_decision_scratch(
            &scratch.comp,
            &scratch.full,
            mid,
            Some(&mut local),
            &mut scratch.search,
            &mut scratch.cover,
        ) {
            hi = scratch.cover.len().min(mid);
            std::mem::swap(&mut scratch.best_cover, &mut scratch.cover);
        } else {
            lo = mid + 1;
        }
    }
    if let Some(s) = stats {
        s.nodes += local.nodes;
        s.reductions += local.reductions;
    }
    scratch.in_cover.clear();
    scratch.in_cover.resize(n, false);
    for &v in &scratch.best_cover {
        scratch.in_cover[v as usize] = true;
    }
    out.extend((0..n as u32).filter(|&v| !scratch.in_cover[v as usize]));
    debug_assert!(adj.is_clique(out));
    true
}

/// Maximum clique of `adj` via minimum vertex cover of the complement.
///
/// Returns `Some(clique)` with `clique.len() = ω > lb`, or `None` when
/// `ω <= lb`. This is the paper's per-neighbourhood algorithmic choice: the
/// initial decision call alone discharges most neighbourhoods; only when a
/// better clique exists does the binary search refine to the exact optimum.
/// One-shot convenience over [`max_clique_via_vc_scratch`].
pub fn max_clique_via_vc(
    adj: &BitMatrix,
    lb: usize,
    stats: Option<&mut VcStats>,
) -> Option<Vec<u32>> {
    let mut scratch = VcSolveScratch::default();
    let mut out = Vec::new();
    max_clique_via_vc_scratch(adj, lb, stats, &mut scratch, &mut out).then_some(out)
}

/// Lower bound: size of a greedily-built maximal matching (every cover must
/// contain at least one endpoint of each matched edge).
pub fn matching_lower_bound(adj: &BitMatrix, alive: &Bitset) -> usize {
    let mut avail = Bitset::new(0);
    let mut row = Bitset::new(0);
    matching_lower_bound_scratch(adj, alive, &mut avail, &mut row)
}

fn matching_lower_bound_scratch(
    adj: &BitMatrix,
    alive: &Bitset,
    avail: &mut Bitset,
    row: &mut Bitset,
) -> usize {
    avail.copy_from(alive);
    row.reset_for_overwrite(alive.capacity());
    let mut matched = 0usize;
    while let Some(v) = avail.first() {
        avail.remove(v);
        avail.intersection_into(adj.row(v), row);
        if let Some(u) = row.first() {
            avail.remove(u);
            matched += 1;
        }
    }
    matched
}

/// Greedy 2-ish-approximation: repeatedly add a maximum-degree vertex.
pub fn greedy_cover(adj: &BitMatrix, alive: &Bitset) -> Vec<u32> {
    let mut alive = alive.clone();
    let mut cover = Vec::new();
    loop {
        let mut best_v = usize::MAX;
        let mut best_d = 0usize;
        for v in alive.iter() {
            let d = adj.degree_within(v, &alive);
            if d > best_d {
                best_d = d;
                best_v = v;
            }
        }
        if best_d == 0 {
            return cover;
        }
        cover.push(best_v as u32);
        alive.remove(best_v);
    }
}

struct VcSolver<'a> {
    adj: &'a BitMatrix,
    stats: VcStats,
    scratch: &'a mut VcScratch,
}

/// Outcome of a kernelization fixpoint.
struct Kernelized {
    /// Undirected edges remaining.
    m: usize,
    /// A maximum-degree alive vertex (valid when `m > 0`).
    max_v: usize,
    /// Its degree.
    max_d: usize,
}

impl VcSolver<'_> {
    /// Decision: cover of size ≤ k for the alive set the caller placed in
    /// `scratch.depths[depth].alive`. On success the chosen vertices are
    /// appended to `cover`; on failure `cover` is restored to its length
    /// at entry.
    fn solve(&mut self, depth: usize, k: i64, cover: &mut Vec<u32>) -> bool {
        self.stats.nodes += 1;
        while self.scratch.depths.len() <= depth + 1 {
            // First visit to this depth (warm-up): grow the arena.
            self.scratch.depths.push(VcDepth::default());
        }
        let mut d = std::mem::take(&mut self.scratch.depths[depth]);
        let ok = self.solve_with(depth, &mut d.alive, k, cover);
        self.scratch.depths[depth] = d;
        ok
    }

    fn solve_with(
        &mut self,
        depth: usize,
        alive: &mut Bitset,
        mut k: i64,
        cover: &mut Vec<u32>,
    ) -> bool {
        let frame_mark = cover.len();
        // --- Kernelization fixpoint (pushes forced picks onto cover) ----
        let Some(kern) = self.kernelize(alive, &mut k, cover) else {
            cover.truncate(frame_mark);
            return false;
        };
        if kern.m == 0 {
            return true; // kernel picks cover everything
        }
        if k <= 0 {
            cover.truncate(frame_mark);
            return false;
        }
        // Buss counting bound: max degree ≤ k after kernelization, so k
        // vertices cover at most k·max_d edges.
        if kern.m > (k as usize) * kern.max_d {
            cover.truncate(frame_mark);
            return false;
        }
        // --- Polynomial tail: paths and cycles --------------------------
        if kern.max_d <= 2 {
            if self.solve_paths_cycles(alive, k, cover) {
                return true;
            }
            cover.truncate(frame_mark);
            return false;
        }
        // --- Branch on a maximum-degree vertex --------------------------
        let v = kern.max_v;
        // Option A: v joins the cover.
        let branch_mark = cover.len();
        {
            let child = &mut self.scratch.depths[depth + 1].alive;
            child.copy_from(alive);
            child.remove(v);
            cover.push(v as u32);
            if self.solve(depth + 1, k - 1, cover) {
                return true;
            }
            cover.truncate(branch_mark);
        }
        // Option B: all of v's alive neighbors join the cover.
        let taken = {
            let VcScratch { depths, row, .. } = &mut *self.scratch;
            row.reset_for_overwrite(alive.capacity());
            alive.intersection_into(self.adj.row(v), row);
            let child = &mut depths[depth + 1].alive;
            child.copy_from(alive);
            let mut taken = 0i64;
            for u in row.iter() {
                cover.push(u as u32);
                child.remove(u);
                taken += 1;
            }
            child.remove(v);
            taken
        };
        if self.solve(depth + 1, k - taken, cover) {
            return true;
        }
        cover.truncate(frame_mark);
        false
    }

    /// Applies the degree-0/1/2 and Buss rules to a fixpoint. Returns
    /// `None` when the budget `k` is exhausted mid-kernelization, otherwise
    /// the residual edge count and a maximum-degree vertex. Iterates word
    /// snapshots of the alive set — no per-sweep vertex list is built.
    fn kernelize(
        &mut self,
        alive: &mut Bitset,
        k: &mut i64,
        cover: &mut Vec<u32>,
    ) -> Option<Kernelized> {
        loop {
            if *k < 0 {
                return None;
            }
            let mut changed = false;
            let mut m2 = 0usize; // sum of degrees over the sweep
            let mut max_v = usize::MAX;
            let mut max_d = 0usize;
            for wi in 0..alive.words().len() {
                let mut w = alive.words()[wi];
                while w != 0 {
                    let v = wi * 64 + w.trailing_zeros() as usize;
                    w &= w - 1;
                    if !alive.contains(v) {
                        continue; // removed earlier in this sweep
                    }
                    let d = self.adj.degree_within(v, alive);
                    if d == 0 {
                        alive.remove(v); // isolated: never needed in a cover
                        self.stats.reductions += 1;
                        changed = true;
                    } else if d as i64 > *k {
                        // Buss rule: more than k incident edges ⇒ v is forced.
                        cover.push(v as u32);
                        alive.remove(v);
                        self.stats.reductions += 1;
                        *k -= 1;
                        changed = true;
                        if *k < 0 {
                            return None;
                        }
                    } else if d == 1 {
                        // Take the single neighbor: always at least as good.
                        let u = self.neighbor_within(v, alive).expect("degree 1");
                        cover.push(u as u32);
                        alive.remove(u);
                        alive.remove(v);
                        self.stats.reductions += 2;
                        *k -= 1;
                        changed = true;
                    } else if d == 2 {
                        // Non-merging degree-2 rule (the paper implements only
                        // this case): if v's two neighbors are adjacent, taking
                        // both dominates any cover containing v.
                        let (a, b) = self.two_neighbors_within(v, alive);
                        if self.adj.has_edge(a, b) {
                            cover.push(a as u32);
                            cover.push(b as u32);
                            alive.remove(a);
                            alive.remove(b);
                            alive.remove(v);
                            self.stats.reductions += 3;
                            *k -= 2;
                            changed = true;
                        } else {
                            m2 += d;
                            if d > max_d {
                                max_d = d;
                                max_v = v;
                            }
                        }
                    } else {
                        m2 += d;
                        if d > max_d {
                            max_d = d;
                            max_v = v;
                        }
                    }
                }
            }
            if !changed {
                // Nothing moved this sweep, so m2/max_d describe the whole
                // alive subgraph consistently.
                return Some(Kernelized {
                    m: m2 / 2,
                    max_v,
                    max_d,
                });
            }
        }
    }

    fn alive_row(&mut self, v: usize, alive: &Bitset) -> &Bitset {
        let row = &mut self.scratch.row;
        row.reset_for_overwrite(alive.capacity());
        alive.intersection_into(self.adj.row(v), row);
        row
    }

    fn neighbor_within(&mut self, v: usize, alive: &Bitset) -> Option<usize> {
        self.alive_row(v, alive).first()
    }

    fn two_neighbors_within(&mut self, v: usize, alive: &Bitset) -> (usize, usize) {
        let row = self.alive_row(v, alive);
        let a = row.first().expect("degree 2");
        let b = row.iter().find(|&u| u != a).expect("degree 2");
        (a, b)
    }

    /// All alive vertices have degree ≤ 2: disjoint paths and cycles.
    /// Optimal covers are closed-form; returns whether they fit in `k`.
    /// On failure the caller restores `cover`.
    fn solve_paths_cycles(&mut self, alive: &Bitset, mut k: i64, cover: &mut Vec<u32>) -> bool {
        let adj = self.adj;
        let VcScratch {
            row, seen, cycle, ..
        } = &mut *self.scratch;
        seen.reset(alive.capacity());
        // Paths first: start walks from endpoints (degree ≤ 1).
        for v in alive.iter() {
            if seen.contains(v) || adj.degree_within(v, alive) > 1 {
                continue;
            }
            // walk the path, taking every second vertex (odd positions)
            let mut prev = usize::MAX;
            let mut cur = v;
            let mut idx = 0usize;
            loop {
                seen.insert(cur);
                if idx % 2 == 1 {
                    cover.push(cur as u32);
                    k -= 1;
                }
                row.reset_for_overwrite(alive.capacity());
                alive.intersection_into(adj.row(cur), row);
                if prev != usize::MAX {
                    row.remove(prev);
                }
                // skip already-seen (handles single vertices)
                let next = row.iter().find(|&u| !seen.contains(u));
                match next {
                    Some(nx) => {
                        prev = cur;
                        cur = nx;
                        idx += 1;
                    }
                    None => break,
                }
            }
            if k < 0 {
                return false;
            }
        }
        // Remaining unseen vertices with degree 2 form cycles.
        for v in alive.iter() {
            if seen.contains(v) {
                continue;
            }
            cycle.clear();
            let mut prev = usize::MAX;
            let mut cur = v;
            loop {
                seen.insert(cur);
                cycle.push(cur as u32);
                row.reset_for_overwrite(alive.capacity());
                alive.intersection_into(adj.row(cur), row);
                if prev != usize::MAX {
                    row.remove(prev);
                }
                let next = row.iter().find(|&u| !seen.contains(u));
                match next {
                    Some(nx) => {
                        prev = cur;
                        cur = nx;
                    }
                    None => break,
                }
            }
            // Cycle of length L needs ceil(L/2): odd positions, plus the
            // last vertex when L is odd.
            let l = cycle.len();
            for (i, &u) in cycle.iter().enumerate() {
                if i % 2 == 1 {
                    cover.push(u);
                    k -= 1;
                }
            }
            if l % 2 == 1 && l > 1 {
                cover.push(cycle[l - 1]);
                k -= 1;
            }
            if k < 0 {
                return false;
            }
        }
        true
    }
}

/// Verifies `cover` touches every edge of the alive subgraph (tests).
pub fn is_vertex_cover(adj: &BitMatrix, alive: &Bitset, cover: &[u32]) -> bool {
    let mut covered = vec![false; adj.len()];
    for &v in cover {
        covered[v as usize] = true;
    }
    for u in alive.iter() {
        for w in 0..adj.len() {
            if alive.contains(w) && adj.has_edge(u, w) && !covered[u] && !covered[w] {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn from_edges(n: usize, edges: &[(usize, usize)]) -> BitMatrix {
        let mut m = BitMatrix::new(n);
        for &(u, v) in edges {
            m.add_edge(u, v);
        }
        m
    }

    #[test]
    fn single_edge_needs_one() {
        let m = from_edges(2, &[(0, 1)]);
        assert!(vertex_cover_decision(&m, 1, None).is_some());
        assert!(vertex_cover_decision(&m, 0, None).is_none());
    }

    #[test]
    fn triangle_needs_two() {
        let m = from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        assert!(vertex_cover_decision(&m, 1, None).is_none());
        let c = vertex_cover_decision(&m, 2, None).unwrap();
        assert!(is_vertex_cover(&m, &Bitset::full(3), &c));
        assert!(c.len() <= 2);
    }

    #[test]
    fn star_needs_one() {
        let m = from_edges(6, &[(0, 1), (0, 2), (0, 3), (0, 4), (0, 5)]);
        let c = vertex_cover_decision(&m, 1, None).unwrap();
        assert_eq!(c, vec![0]);
    }

    #[test]
    fn path_cover_sizes() {
        // P_n needs floor(n/2)
        for n in 2..10usize {
            let edges: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, i + 1)).collect();
            let m = from_edges(n, &edges);
            let mvc = min_vertex_cover(&m, None);
            assert_eq!(mvc.len(), n / 2, "path n={n}");
            assert!(is_vertex_cover(&m, &Bitset::full(n), &mvc));
        }
    }

    #[test]
    fn cycle_cover_sizes() {
        // C_n needs ceil(n/2)
        for n in 3..10usize {
            let mut edges: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, i + 1)).collect();
            edges.push((n - 1, 0));
            let m = from_edges(n, &edges);
            let mvc = min_vertex_cover(&m, None);
            assert_eq!(mvc.len(), n.div_ceil(2), "cycle n={n}");
            assert!(is_vertex_cover(&m, &Bitset::full(n), &mvc));
        }
    }

    #[test]
    fn complete_graph_cover_is_n_minus_one() {
        for n in 2..8usize {
            let mut edges = Vec::new();
            for u in 0..n {
                for v in u + 1..n {
                    edges.push((u, v));
                }
            }
            let m = from_edges(n, &edges);
            assert_eq!(min_vertex_cover(&m, None).len(), n - 1, "K{n}");
        }
    }

    #[test]
    fn empty_graph_cover_is_empty() {
        let m = BitMatrix::new(5);
        assert!(min_vertex_cover(&m, None).is_empty());
        assert!(vertex_cover_decision(&m, 0, None).is_some());
    }

    #[test]
    fn clique_via_vc_matches_direct() {
        use crate::mc::max_clique_exact;
        // assorted small graphs
        let graphs = vec![
            from_edges(6, &[(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 5)]),
            from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4), (1, 2), (3, 4)]),
            from_edges(4, &[]),
        ];
        for m in graphs {
            let direct = max_clique_exact(&m);
            let via = max_clique_via_vc(&m, 0, None).unwrap_or_default();
            // edgeless graphs: ω = 1 > lb = 0, both should find a vertex
            assert_eq!(direct.len(), via.len().max(direct.len().min(via.len())));
            assert_eq!(direct.len(), via.len());
            assert!(m.is_clique(&via));
        }
    }

    #[test]
    fn clique_via_vc_respects_lower_bound() {
        let m = from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        assert!(max_clique_via_vc(&m, 3, None).is_none());
        assert_eq!(max_clique_via_vc(&m, 2, None).unwrap().len(), 3);
    }

    #[test]
    fn matching_bound_is_a_lower_bound() {
        let m = from_edges(6, &[(0, 1), (2, 3), (4, 5), (1, 2), (3, 4)]);
        let alive = Bitset::full(6);
        let lb = matching_lower_bound(&m, &alive);
        let mvc = min_vertex_cover(&m, None).len();
        assert!(lb <= mvc);
    }

    #[test]
    fn stats_accumulate() {
        let m = from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (0, 2)]);
        let mut st = VcStats::default();
        let _ = min_vertex_cover(&m, Some(&mut st));
        assert!(st.nodes > 0);
    }

    #[test]
    fn kernelization_reductions_counted() {
        // A star kernelizes entirely (degree-1 rule): reductions > 0.
        let m = from_edges(6, &[(0, 1), (0, 2), (0, 3), (0, 4), (0, 5)]);
        let mut st = VcStats::default();
        let c = vertex_cover_decision(&m, 1, Some(&mut st)).unwrap();
        assert_eq!(c, vec![0]);
        assert!(st.reductions > 0);
    }

    #[test]
    fn scratch_reuse_across_solves_and_sizes() {
        // One scratch through subgraphs of different sizes must match the
        // fresh-scratch answers exactly.
        let mut scratch = VcSolveScratch::new();
        let mut out = Vec::new();
        let graphs = vec![
            from_edges(6, &[(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 5)]),
            from_edges(70, &[(0, 69), (69, 35), (35, 0), (1, 2)]),
            from_edges(3, &[(0, 1), (1, 2), (2, 0)]),
            from_edges(4, &[]),
        ];
        for m in &graphs {
            let expect = max_clique_via_vc(m, 0, None).unwrap();
            assert!(max_clique_via_vc_scratch(
                m,
                0,
                None,
                &mut scratch,
                &mut out
            ));
            assert_eq!(out.len(), expect.len(), "graph {m:?}");
            assert!(m.is_clique(&out));
        }
        // lb suppression
        assert!(!max_clique_via_vc_scratch(
            &graphs[2],
            3,
            None,
            &mut scratch,
            &mut out
        ));
        assert!(out.is_empty());
    }
}
