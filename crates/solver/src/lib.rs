//! Subgraph solvers for LazyMC (paper §IV-E, "algorithmic choice").
//!
//! Once advance filtering has reduced a right-neighbourhood to its zone of
//! interest, the residual problem is solved on a *small, dense* induced
//! subgraph by one of two exact engines:
//!
//! * [`mc::max_clique_dense`] — Bron–Kerbosch-derived branch-and-bound with
//!   Tomita-style color-order branching and greedy-coloring bounds;
//! * [`vc::max_clique_via_vc`] — k-vertex-cover search on the complement
//!   (Buss kernel, degree-0/1/2 kernelization, polynomial path/cycle tail),
//!   with a per-neighbourhood binary search for the exact optimum.
//!
//! Both operate on [`bitset::BitMatrix`] adjacency, the word-parallel dense
//! representation appropriate for subgraphs whose density routinely exceeds
//! 50% (paper §III-D). The same engines back the dOmega-like baseline.
//!
//! ```
//! use lazymc_solver::{BitMatrix, max_clique_exact, max_clique_via_vc};
//!
//! // A triangle with a pendant vertex.
//! let mut adj = BitMatrix::new(4);
//! for (u, v) in [(0, 1), (1, 2), (2, 0), (2, 3)] {
//!     adj.add_edge(u, v);
//! }
//! let direct = max_clique_exact(&adj);
//! assert_eq!(direct.len(), 3);
//! // The k-vertex-cover engine agrees (omega = n - minVC(complement)).
//! let via_vc = max_clique_via_vc(&adj, 0, None).unwrap();
//! assert_eq!(via_vc.len(), 3);
//! ```

pub mod bitset;
pub mod coloring;
pub mod live;
pub mod mc;
pub mod par;
pub mod scratch;
pub mod vc;

pub use bitset::{BitMatrix, Bitset};
pub use coloring::{color_order, color_order_scratch, greedy_color_count, ColorScratch};
pub use live::LiveNodes;
pub use mc::{
    max_clique_dense, max_clique_dense_par, max_clique_dense_par_live, max_clique_dense_sched,
    max_clique_dense_sched_live, max_clique_dense_scratch, max_clique_dense_scratch_live,
    max_clique_dense_subtree, max_clique_dense_within, max_clique_exact, reduce_candidates,
    McScratch, McStats,
};
pub use par::{SearchAbort, SharedBest, StopFn};
pub use scratch::Pool;
pub use vc::{
    max_clique_via_vc, max_clique_via_vc_par, max_clique_via_vc_par_live,
    max_clique_via_vc_sched_live, max_clique_via_vc_scratch, max_clique_via_vc_scratch_live,
    min_vertex_cover, vertex_cover_decision, vertex_cover_decision_abortable,
    vertex_cover_decision_par, vertex_cover_decision_sched, vertex_cover_decision_sched_live,
    vertex_cover_decision_scratch, vertex_cover_decision_within, VcSchedDecision, VcScratch,
    VcSolveScratch, VcStats,
};

#[cfg(test)]
pub(crate) mod test_util {
    use crate::bitset::BitMatrix;

    /// Deterministic pseudo-random graph (xorshift64*), densities in
    /// permille — the shared fixture generator of the in-crate tests.
    pub(crate) fn pseudo_graph(n: usize, p_permille: u64, seed: u64) -> BitMatrix {
        let mut m = BitMatrix::new(n);
        let mut state = seed | 1;
        for u in 0..n {
            for v in u + 1..n {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                if state.wrapping_mul(0x2545_F491_4F6C_DD1D) % 1000 < p_permille {
                    m.add_edge(u, v);
                }
            }
        }
        m
    }
}
