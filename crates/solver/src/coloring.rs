//! Greedy graph coloring for clique upper bounds.
//!
//! A clique of size `k` needs `k` colors, so the chromatic number of the
//! subgraph induced by a candidate set bounds any clique inside it (paper
//! §II-A, \[10\], \[15\]). The branch-and-bound solver uses the classic
//! Tomita-style *color order*: candidates are emitted grouped by color
//! class, and the color index of a candidate is an upper bound for the best
//! clique extendable from it and everything emitted before it.

use crate::bitset::{BitMatrix, Bitset};

/// Greedy sequential coloring of the subgraph induced by `cand`.
/// Returns the number of colors used — an upper bound on ω(G\[cand\]).
pub fn greedy_color_count(adj: &BitMatrix, cand: &Bitset) -> usize {
    let mut uncolored = cand.clone();
    let mut colors = 0usize;
    let mut class = Bitset::new(cand.capacity());
    while !uncolored.is_empty() {
        colors += 1;
        class.clear();
        let mut avail = uncolored.clone();
        while let Some(v) = avail.first() {
            class.insert(v);
            uncolored.remove(v);
            avail.remove(v);
            // Remove v's neighbors from this class's availability.
            for (a, &b) in avail_words_mut(&mut avail).iter_mut().zip(adj.row(v)) {
                *a &= !b;
            }
        }
    }
    colors
}

// Private accessor: Bitset doesn't expose mutable words publicly; keep the
// word-level AND-NOT local to this module.
fn avail_words_mut(b: &mut Bitset) -> &mut [u64] {
    // SAFETY-free: implemented via a crate-internal method.
    b.words_mut()
}

/// Tomita-style color order.
///
/// Emits the candidates of `cand` as `(order, bound)` where `order` lists
/// vertices grouped by ascending color class and `bound[i]` is the color
/// (1-based) of `order[i]`. For every prefix cut at `i`, the best clique
/// using only `order[0..=i]` has size at most `bound[i]`, so branching from
/// the *end* of the array lets the solver prune the entire remainder as
/// soon as `|C| + bound[i] <= incumbent`.
pub fn color_order(adj: &BitMatrix, cand: &Bitset, order: &mut Vec<u32>, bound: &mut Vec<u32>) {
    order.clear();
    bound.clear();
    let mut uncolored = cand.clone();
    let mut color = 0u32;
    while !uncolored.is_empty() {
        color += 1;
        let mut avail = uncolored.clone();
        while let Some(v) = avail.first() {
            uncolored.remove(v);
            avail.remove(v);
            for (a, &b) in avail_words_mut(&mut avail).iter_mut().zip(adj.row(v)) {
                *a &= !b;
            }
            order.push(v as u32);
            bound.push(color);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(n: usize) -> BitMatrix {
        let mut m = BitMatrix::new(n);
        for u in 0..n {
            for v in u + 1..n {
                m.add_edge(u, v);
            }
        }
        m
    }

    #[test]
    fn complete_graph_needs_n_colors() {
        let m = k(5);
        let cand = Bitset::full(5);
        assert_eq!(greedy_color_count(&m, &cand), 5);
    }

    #[test]
    fn edgeless_graph_needs_one_color() {
        let m = BitMatrix::new(8);
        let cand = Bitset::full(8);
        assert_eq!(greedy_color_count(&m, &cand), 1);
    }

    #[test]
    fn empty_candidate_set_needs_zero() {
        let m = k(4);
        let cand = Bitset::new(4);
        assert_eq!(greedy_color_count(&m, &cand), 0);
    }

    #[test]
    fn bipartite_needs_at_most_two() {
        // C4: 0-1-2-3-0
        let mut m = BitMatrix::new(4);
        for (u, v) in [(0, 1), (1, 2), (2, 3), (3, 0)] {
            m.add_edge(u, v);
        }
        let colors = greedy_color_count(&m, &Bitset::full(4));
        assert!(colors <= 2, "C4 is bipartite, got {colors}");
    }

    #[test]
    fn color_order_bounds_are_monotone_and_valid() {
        // K4 on {0..3} plus a pendant vertex 4 attached to 0.
        let mut m = BitMatrix::new(5);
        for u in 0..4 {
            for v in u + 1..4 {
                m.add_edge(u, v);
            }
        }
        m.add_edge(0, 4);
        let mut order = Vec::new();
        let mut bound = Vec::new();
        let mut cand = Bitset::full(5);
        color_order(&m, &cand, &mut order, &mut bound);
        assert_eq!(order.len(), 5);
        // bounds ascend
        for w in bound.windows(2) {
            assert!(w[0] <= w[1]);
        }
        // max bound >= omega (K4 → >= 4)
        assert!(*bound.last().unwrap() >= 4);
        // restricted candidate set
        cand.clear();
        cand.insert(1);
        cand.insert(4);
        color_order(&m, &cand, &mut order, &mut bound);
        assert_eq!(order.len(), 2);
        // 1 and 4 are non-adjacent → same color class
        assert_eq!(bound, vec![1, 1]);
    }

    #[test]
    fn coloring_never_below_clique_number_random() {
        // sanity on random graphs: colors >= omega via a known clique
        let mut m = BitMatrix::new(10);
        // plant a triangle 2-5-7 plus noise
        for (u, v) in [(2, 5), (5, 7), (2, 7), (0, 1), (3, 4), (8, 9), (1, 9)] {
            m.add_edge(u, v);
        }
        assert!(greedy_color_count(&m, &Bitset::full(10)) >= 3);
    }
}
