//! Offline stand-in for the subset of `criterion` this workspace uses.
//!
//! A minimal wall-clock benchmark harness: no statistics, no plotting, no
//! CLI. Each benchmark warms up briefly, then runs `sample_size`
//! iterations (bounded by `measurement_time`) and prints min/median
//! timings. Good enough to compare orders of magnitude offline; use real
//! criterion when the network is back if you need confidence intervals.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness handle (subset of `criterion::Criterion`).
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_secs(1),
            warm_up_time: Duration::from_millis(100),
        }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            warm_up_time: self.warm_up_time,
            _parent: std::marker::PhantomData,
        }
    }

    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) {
        let mut g = self.benchmark_group("");
        g.bench_function(name, &mut f);
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    _parent: std::marker::PhantomData<&'a mut Criterion>,
}

impl<'a> BenchmarkGroup<'a> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    pub fn warm_up_time(&mut self, t: Duration) -> &mut Self {
        self.warm_up_time = t;
        self
    }

    pub fn bench_function(&mut self, id: impl std::fmt::Display, mut f: impl FnMut(&mut Bencher)) {
        self.run(&id.to_string(), &mut f);
    }

    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        self.run(&id.to_string(), &mut |b: &mut Bencher| f(b, input));
        self
    }

    pub fn finish(&mut self) {}

    fn run(&self, id: &str, f: &mut dyn FnMut(&mut Bencher)) {
        let mut b = Bencher {
            samples: Vec::new(),
            deadline: Instant::now() + self.warm_up_time + self.measurement_time,
            budget_samples: self.sample_size,
        };
        // One warm-up invocation, then timed samples.
        f(&mut b);
        let label = if self.name.is_empty() {
            id.to_string()
        } else {
            format!("{}/{}", self.name, id)
        };
        match b.summary() {
            Some((min, median)) => {
                println!("bench {label:<40} min {min:>12?}  median {median:>12?}")
            }
            None => println!("bench {label:<40} (no samples)"),
        }
    }
}

/// Times closures handed to it by a benchmark body.
pub struct Bencher {
    samples: Vec<Duration>,
    deadline: Instant,
    budget_samples: usize,
}

impl Bencher {
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Warm-up call, not recorded.
        black_box(routine());
        for _ in 0..self.budget_samples {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
            if Instant::now() >= self.deadline {
                break;
            }
        }
    }

    fn summary(&mut self) -> Option<(Duration, Duration)> {
        if self.samples.is_empty() {
            return None;
        }
        self.samples.sort_unstable();
        Some((self.samples[0], self.samples[self.samples.len() / 2]))
    }
}

/// Identifier for a parameterized benchmark (`function/parameter`).
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    pub fn new(function: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            function: function.to_string(),
            parameter: parameter.to_string(),
        }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            function: String::new(),
            parameter: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.function.is_empty() {
            f.write_str(&self.parameter)
        } else {
            write!(f, "{}/{}", self.function, self.parameter)
        }
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench `main` that runs the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_records() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(3).measurement_time(Duration::from_millis(50));
        let mut runs = 0u32;
        g.bench_with_input(BenchmarkId::new("f", 1), &5u32, |b, &x| {
            b.iter(|| {
                runs += 1;
                x * 2
            })
        });
        g.finish();
        assert!(runs >= 4); // warm-up + samples
    }
}
