//! Mid-search node sampling for live progress.
//!
//! A detailed search inside one dense neighbourhood can run for seconds;
//! callers that publish live progress (the daemon's `GET /jobs/<id>`)
//! would otherwise only see node counts move *between* neighbourhoods.
//! [`LiveNodes`] is an optional sink the kernels drain their node count
//! into every [`SAMPLE_INTERVAL`] expansions — one relaxed `fetch_add`
//! per ~4k nodes, so the sequential kernels keep their deterministic
//! node counts and their zero-steady-state-allocation inner loop.
//!
//! Totals stay exact: every flushed batch is also recorded in the
//! run's `sampled` statistic, and callers that accumulate `nodes` after
//! the call add only the residual `nodes - sampled`.

use std::sync::atomic::{AtomicU64, Ordering};

/// Node expansions between flushes into the live sink.
pub const SAMPLE_INTERVAL: u64 = 4096;

/// Optional live node-count sink (a progress cell's counter).
#[derive(Clone, Copy, Default)]
pub struct LiveNodes<'a> {
    sink: Option<&'a AtomicU64>,
}

impl<'a> LiveNodes<'a> {
    /// No live observer — the kernels' default, zero-cost path.
    pub const NONE: LiveNodes<'static> = LiveNodes { sink: None };

    /// Samples into `sink` every [`SAMPLE_INTERVAL`] node expansions.
    pub fn new(sink: &'a AtomicU64) -> LiveNodes<'a> {
        LiveNodes { sink: Some(sink) }
    }

    /// Called once per node expansion with the searcher's running node
    /// count; flushes one batch into the sink at each interval boundary
    /// and records it in `sampled`.
    #[inline]
    pub fn tick(&self, nodes: u64, sampled: &mut u64) {
        if let Some(sink) = self.sink {
            if nodes.is_multiple_of(SAMPLE_INTERVAL) {
                sink.fetch_add(SAMPLE_INTERVAL, Ordering::Relaxed);
                *sampled += SAMPLE_INTERVAL;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_never_flushes() {
        let mut sampled = 0u64;
        for n in 1..=3 * SAMPLE_INTERVAL {
            LiveNodes::NONE.tick(n, &mut sampled);
        }
        assert_eq!(sampled, 0);
    }

    #[test]
    fn flushes_once_per_interval_and_accounts_exactly() {
        let sink = AtomicU64::new(0);
        let live = LiveNodes::new(&sink);
        let mut sampled = 0u64;
        let total = 2 * SAMPLE_INTERVAL + 17;
        for n in 1..=total {
            live.tick(n, &mut sampled);
        }
        assert_eq!(sink.load(Ordering::Relaxed), 2 * SAMPLE_INTERVAL);
        assert_eq!(sampled, 2 * SAMPLE_INTERVAL);
        // The caller's residual add makes the total exact.
        assert_eq!(sink.load(Ordering::Relaxed) + (total - sampled), total);
    }
}
