//! Dense maximum clique branch-and-bound.
//!
//! The subgraph MC solver of the paper (§IV-E): derived from Bron–Kerbosch
//! with Tomita-style branching — candidates are greedily colored and
//! explored in reverse color order so that `|C| + color(v) <= |C*|` prunes
//! the whole remaining prefix — plus incumbent-size pruning. It operates on
//! the bit-matrix adjacency of the (small, dense) filtered neighbourhood.

use crate::bitset::{BitMatrix, Bitset};
use crate::coloring::color_order;

/// Search statistics, used by the work-accounting figures.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct McStats {
    /// Branch-and-bound tree nodes expanded.
    pub nodes: u64,
}

struct Searcher<'a> {
    adj: &'a BitMatrix,
    best: usize,
    best_clique: Vec<u32>,
    current: Vec<u32>,
    stats: McStats,
    /// Per-depth scratch buffers (color order, bounds, next candidate set).
    scratch: Vec<(Vec<u32>, Vec<u32>, Bitset)>,
}

impl<'a> Searcher<'a> {
    fn expand(&mut self, cand: &Bitset, depth: usize) {
        self.stats.nodes += 1;
        if self.scratch.len() <= depth {
            let n = self.adj.len();
            self.scratch.push((Vec::new(), Vec::new(), Bitset::new(n)));
        }
        // Take the depth's scratch buffers out to appease the borrow checker;
        // they are returned before unwinding the frame.
        let (mut order, mut bound, mut next) = std::mem::replace(
            &mut self.scratch[depth],
            (Vec::new(), Vec::new(), Bitset::new(0)),
        );
        color_order(self.adj, cand, &mut order, &mut bound);
        let mut cand = cand.clone();
        for i in (0..order.len()).rev() {
            if self.current.len() + bound[i] as usize <= self.best {
                break; // bounds ascend: everything before i prunes too
            }
            let v = order[i] as usize;
            self.current.push(v as u32);
            cand.intersection_into(self.adj.row(v), &mut next);
            if next.is_empty() {
                if self.current.len() > self.best {
                    self.best = self.current.len();
                    self.best_clique = self.current.clone();
                }
            } else {
                let next_snapshot = next.clone();
                self.expand(&next_snapshot, depth + 1);
            }
            self.current.pop();
            cand.remove(v);
        }
        self.scratch[depth] = (order, bound, next);
    }
}

/// Finds a maximum clique of the graph *if it is larger than `lb`*.
///
/// Returns `Some(clique)` with `clique.len() == ω(G) > lb`, or `None` when
/// `ω(G) <= lb` — the caller's incumbent already covers this subgraph.
/// `stats`, when provided, accumulates node counts.
pub fn max_clique_dense(
    adj: &BitMatrix,
    lb: usize,
    stats: Option<&mut McStats>,
) -> Option<Vec<u32>> {
    let n = adj.len();
    if n == 0 || n <= lb {
        return None;
    }
    max_clique_dense_within(adj, &Bitset::full(n), lb, stats)
}

/// [`max_clique_dense`] restricted to the vertices of `within` — used when
/// a reduction pass has already discarded part of the subgraph.
pub fn max_clique_dense_within(
    adj: &BitMatrix,
    within: &Bitset,
    lb: usize,
    stats: Option<&mut McStats>,
) -> Option<Vec<u32>> {
    if adj.is_empty() || within.len() <= lb {
        return None;
    }
    let mut s = Searcher {
        adj,
        best: lb,
        best_clique: Vec::new(),
        current: Vec::new(),
        stats: McStats::default(),
        scratch: Vec::new(),
    };
    s.expand(within, 0);
    if let Some(out) = stats {
        out.nodes += s.stats.nodes;
    }
    if s.best_clique.is_empty() {
        None
    } else {
        Some(s.best_clique)
    }
}

/// Iterated degree reduction within a candidate set: removes every vertex
/// whose candidate-degree cannot complete a clique of size > `lb`, to a
/// fixpoint. This is the "MC-BRB-style filtering inside the subgraph" the
/// paper names as an easy extension to LazyMC (§V-A); returns the number
/// of vertices removed.
pub fn reduce_candidates(adj: &BitMatrix, within: &mut Bitset, lb: usize) -> usize {
    let mut removed = 0usize;
    loop {
        let mut changed = false;
        for v in within.clone().iter() {
            // a clique through v has at most deg_within(v) + 1 vertices
            if adj.degree_within(v, within) < lb {
                within.remove(v);
                removed += 1;
                changed = true;
            }
        }
        if !changed {
            return removed;
        }
    }
}

/// Exact maximum clique (no prior bound). Empty graph → empty clique.
pub fn max_clique_exact(adj: &BitMatrix) -> Vec<u32> {
    max_clique_dense(adj, 0, None).unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn from_edges(n: usize, edges: &[(usize, usize)]) -> BitMatrix {
        let mut m = BitMatrix::new(n);
        for &(u, v) in edges {
            m.add_edge(u, v);
        }
        m
    }

    #[test]
    fn triangle() {
        let m = from_edges(4, &[(0, 1), (1, 2), (2, 0), (2, 3)]);
        let c = max_clique_exact(&m);
        assert_eq!(c.len(), 3);
        assert!(m.is_clique(&c));
    }

    #[test]
    fn complete_graph() {
        let mut m = BitMatrix::new(7);
        for u in 0..7 {
            for v in u + 1..7 {
                m.add_edge(u, v);
            }
        }
        assert_eq!(max_clique_exact(&m).len(), 7);
    }

    #[test]
    fn edgeless_graph_clique_is_single_vertex() {
        let m = BitMatrix::new(5);
        assert_eq!(max_clique_exact(&m).len(), 1);
    }

    #[test]
    fn empty_graph() {
        let m = BitMatrix::new(0);
        assert!(max_clique_exact(&m).is_empty());
    }

    #[test]
    fn lower_bound_suppresses_result() {
        let m = from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        assert!(max_clique_dense(&m, 3, None).is_none());
        assert!(max_clique_dense(&m, 4, None).is_none());
        assert_eq!(max_clique_dense(&m, 2, None).unwrap().len(), 3);
    }

    #[test]
    fn two_cliques_picks_larger() {
        // K3 on {0,1,2} and K4 on {3,4,5,6}
        let mut edges = vec![(0, 1), (1, 2), (2, 0)];
        for u in 3..7 {
            for v in u + 1..7 {
                edges.push((u, v));
            }
        }
        edges.push((2, 3)); // bridge
        let m = from_edges(7, &edges);
        let c = max_clique_exact(&m);
        assert_eq!(c.len(), 4);
        let mut c = c;
        c.sort_unstable();
        assert_eq!(c, vec![3, 4, 5, 6]);
    }

    #[test]
    fn petersen_graph_omega_two() {
        // The Petersen graph is triangle-free: ω = 2.
        let outer = [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)];
        let spokes = [(0, 5), (1, 6), (2, 7), (3, 8), (4, 9)];
        let inner = [(5, 7), (7, 9), (9, 6), (6, 8), (8, 5)];
        let edges: Vec<(usize, usize)> =
            outer.iter().chain(&spokes).chain(&inner).copied().collect();
        let m = from_edges(10, &edges);
        assert_eq!(max_clique_exact(&m).len(), 2);
    }

    #[test]
    fn stats_count_nodes() {
        let m = from_edges(4, &[(0, 1), (1, 2), (2, 0), (0, 3), (1, 3)]);
        let mut st = McStats::default();
        let c = max_clique_dense(&m, 0, Some(&mut st));
        assert_eq!(c.unwrap().len(), 3);
        assert!(st.nodes > 0);
    }
}
