//! dOmega-like solver (Walteros & Buchanan \[7\]).
//!
//! Exploits the observation that ω is usually close to the degeneracy
//! upper bound d+1: test clique-core gaps γ = d+1−ω in increasing order,
//! answering each "is there a clique of size d+1−γ?" question by
//! k-vertex-cover decisions on the complements of right-neighbourhoods.
//! The gap progression is either **linear** (γ = 0, 1, 2, …) or a
//! **binary search** — the paper's dOmega-LS and dOmega-BS columns, whose
//! divergence on gap-heavy graphs Table II reproduces.
//!
//! Sequential, like the original.

use crate::shared::greedy_from;
use lazymc_graph::{CsrGraph, VertexId};
use lazymc_order::kcore_sequential;
use lazymc_solver::bitset::BitMatrix;
use lazymc_solver::vertex_cover_decision;

/// Gap progression strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GapSchedule {
    /// γ = 0, 1, 2, … (dOmega-LS).
    Linear,
    /// Binary search over γ (dOmega-BS).
    Binary,
}

/// Runs the dOmega-like solver.
pub fn domega(g: &CsrGraph, schedule: GapSchedule) -> Vec<VertexId> {
    let n = g.num_vertices();
    if n == 0 {
        return Vec::new();
    }
    let kc = kcore_sequential(g);
    let d = kc.degeneracy as usize;

    // Heuristic lower bound: greedy from a few of the deepest-core vertices.
    let mut best: Vec<VertexId> = vec![0];
    for &v in kc
        .peel_order
        .iter()
        .rev()
        .take(8)
        .collect::<Vec<_>>()
        .iter()
    {
        let c = greedy_from(g, *v);
        if c.len() > best.len() {
            best = c;
        }
    }

    // rank in peeling order for right-neighbourhood definition
    let mut rank = vec![0 as VertexId; n];
    for (i, &v) in kc.peel_order.iter().enumerate() {
        rank[v as usize] = i as VertexId;
    }

    // test(target): find a clique of size >= target, or None.
    let test = |target: usize| -> Option<Vec<VertexId>> {
        if target <= 1 {
            return Some(vec![0]);
        }
        for &v in &kc.peel_order {
            if (kc.coreness[v as usize] as usize) < target - 1 {
                continue;
            }
            // right-neighbourhood in peel order, restricted to coreness
            // >= target-1 (neighbourhoods are sorted by coreness here).
            let members: Vec<VertexId> = g
                .neighbors(v)
                .iter()
                .copied()
                .filter(|&u| {
                    rank[u as usize] > rank[v as usize]
                        && (kc.coreness[u as usize] as usize) >= target - 1
                })
                .collect();
            if members.len() < target - 1 {
                continue;
            }
            // Does G[members] contain a clique of size target-1?
            // ⟺ minVC(complement) <= |members| - (target-1).
            let mut adj = BitMatrix::new(members.len());
            for (i, &u) in members.iter().enumerate() {
                for (j, &w) in members.iter().enumerate().skip(i + 1) {
                    if g.has_edge(u, w) {
                        adj.add_edge(i, j);
                    }
                }
            }
            let comp = adj.complement();
            let k = members.len() - (target - 1);
            if let Some(cover) = vertex_cover_decision(&comp, k, None) {
                let mut in_cover = vec![false; members.len()];
                for &c in &cover {
                    in_cover[c as usize] = true;
                }
                let mut clique: Vec<VertexId> = members
                    .iter()
                    .enumerate()
                    .filter(|&(i, _)| !in_cover[i])
                    .map(|(_, &u)| u)
                    .collect();
                clique.push(v);
                debug_assert!(g.is_clique(&clique));
                return Some(clique);
            }
        }
        None
    };

    match schedule {
        GapSchedule::Linear => {
            // γ = 0, 1, 2, …: targets d+1, d, …; the first hit is ω.
            let mut target = d + 1;
            while target > best.len() {
                if let Some(c) = test(target) {
                    return c;
                }
                target -= 1;
            }
            best
        }
        GapSchedule::Binary => {
            // Largest feasible target in [best, d+1] by bisection
            // (feasibility is monotone decreasing in the target).
            let mut lo = best.len();
            let mut hi = d + 1;
            while lo < hi {
                let mid = lo + (hi - lo).div_ceil(2);
                match test(mid) {
                    Some(c) => {
                        lo = c.len().max(mid);
                        if c.len() > best.len() {
                            best = c;
                        }
                    }
                    None => hi = mid - 1,
                }
            }
            best
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lazymc_graph::gen;

    #[test]
    fn both_schedules_solve_known_graphs() {
        for schedule in [GapSchedule::Linear, GapSchedule::Binary] {
            assert_eq!(domega(&gen::complete(7), schedule).len(), 7);
            assert_eq!(domega(&gen::path(10), schedule).len(), 2);
            assert_eq!(domega(&gen::triangulated_grid(5, 4), schedule).len(), 4);
            assert_eq!(domega(&CsrGraph::empty(3), schedule).len(), 1);
        }
    }

    #[test]
    fn schedules_agree_on_gap_heavy_graph() {
        let g = gen::dense_overlap(100, 12, 6, 12, 0.08, 3);
        let ls = domega(&g, GapSchedule::Linear);
        let bs = domega(&g, GapSchedule::Binary);
        assert!(g.is_clique(&ls));
        assert!(g.is_clique(&bs));
        assert_eq!(ls.len(), bs.len());
    }

    #[test]
    fn zero_gap_graph_hits_first_probe() {
        // caveman with no rewiring: ω = community size = d+1, gap 0: LS
        // succeeds on its very first target.
        let g = gen::caveman(5, 6, 0.0, 1);
        assert_eq!(domega(&g, GapSchedule::Linear).len(), 6);
    }
}
