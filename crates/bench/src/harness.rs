//! Shared plumbing for the experiment binaries: timing helpers and a plain
//! text table renderer matching the paper's layout.

use std::time::{Duration, Instant};

/// Times one execution of `f`, returning `(result, elapsed)`.
pub fn time_once<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let t = Instant::now();
    let r = f();
    (r, t.elapsed())
}

/// Runs `f` `reps` times; returns `(last result, mean, stddev as % of mean)`
/// — the paper's Table II reports exactly that deviation measure.
pub fn time_stats<T>(reps: usize, mut f: impl FnMut() -> T) -> (T, Duration, f64) {
    assert!(reps >= 1);
    let mut times = Vec::with_capacity(reps);
    let mut last = None;
    for _ in 0..reps {
        let (r, d) = time_once(&mut f);
        times.push(d.as_secs_f64());
        last = Some(r);
    }
    let mean = times.iter().sum::<f64>() / reps as f64;
    let var = times.iter().map(|t| (t - mean) * (t - mean)).sum::<f64>() / reps as f64;
    let dev_pct = if mean > 0.0 {
        var.sqrt() / mean * 100.0
    } else {
        0.0
    };
    (
        last.expect("reps >= 1"),
        Duration::from_secs_f64(mean),
        dev_pct,
    )
}

/// Median of a slice (NaNs not expected); returns 0 for empty input.
pub fn median(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut v = values.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs"));
    let mid = v.len() / 2;
    if v.len() % 2 == 1 {
        v[mid]
    } else {
        (v[mid - 1] + v[mid]) / 2.0
    }
}

/// Minimal fixed-width text table.
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header arity).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "column count mismatch");
        self.rows.push(cells);
    }

    /// Renders with per-column padding.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut width = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            width[i] = h.len();
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                width[i] = width[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], width: &[usize]| -> String {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:>w$}", c, w = width[i]));
            }
            line
        };
        out.push_str(&fmt_row(&self.header, &width));
        out.push('\n');
        out.push_str(&"-".repeat(width.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &width));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_odd_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(median(&[]), 0.0);
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["long-name".into(), "23".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[3].contains("long-name"));
    }

    #[test]
    fn time_stats_shape() {
        let (r, mean, dev) = time_stats(3, || 42);
        assert_eq!(r, 42);
        assert!(mean.as_nanos() < 1_000_000);
        assert!(dev >= 0.0);
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn table_rejects_bad_arity() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["x".into()]);
    }
}
