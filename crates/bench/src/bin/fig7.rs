//! Fig. 7 — parallel scaling efficiency and the adverse impact on work.
//!
//! For four instances and thread counts 1, 2, 4, … up to the machine: the
//! per-phase time breakdown, the speedup over 1 thread, and the *work
//! ratio* — total systematic-search work (thread-seconds) relative to the
//! single-thread run. The paper's key observation: speedup grows, but so
//! does total work, because concurrent searches forego incumbent updates.
//!
//! Run: `cargo run -p lazymc-bench --release --bin fig7 [--test]`

use lazymc_bench::cli::{ratio, secs, CommonArgs};
use lazymc_bench::{time_stats, Table};
use lazymc_core::{Config, LazyMc};

const INSTANCES: [&str; 4] = ["social", "wiki", "bio-dense", "planted-hard"];

fn thread_counts() -> Vec<usize> {
    let max = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let mut t = 1;
    let mut out = Vec::new();
    while t <= max {
        out.push(t);
        t *= 2;
    }
    if *out.last().unwrap() != max {
        out.push(max);
    }
    out
}

fn main() {
    let args = CommonArgs::parse();
    let names: Vec<String> = match &args.instance {
        Some(n) => vec![n.clone()],
        None => INSTANCES.iter().map(|s| s.to_string()).collect(),
    };
    for name in names {
        let inst = lazymc_graph::suite::by_name(&name).expect("instance");
        let g = inst.build(args.scale);
        let mut table = Table::new(&[
            "threads",
            "deg-heur[s]",
            "preproc[s]",
            "core-heur[s]",
            "systematic[s]",
            "total[s]",
            "speedup",
            "work",
        ]);
        let mut base_time = None;
        let mut base_work = None;
        let mut omega0 = None;
        for t in thread_counts() {
            let cfg = Config::default().with_threads(t);
            let (r, mean, _) = time_stats(args.reps, || LazyMc::new(cfg.clone()).solve(&g));
            match omega0 {
                None => omega0 = Some(r.size()),
                Some(o) => assert_eq!(o, r.size(), "threads changed omega on {name}"),
            }
            let p = &r.metrics.phases;
            let total = mean.as_secs_f64();
            let work = r.metrics.systematic_work().as_secs_f64();
            let bt = *base_time.get_or_insert(total);
            let bw = *base_work.get_or_insert(work.max(1e-9));
            table.row(vec![
                t.to_string(),
                secs(p.degree_heuristic),
                secs(p.kcore + p.reorder + p.prepopulate),
                secs(p.coreness_heuristic),
                secs(p.systematic),
                format!("{total:.3}"),
                ratio(bt / total.max(1e-9)),
                ratio(work / bw),
            ]);
        }
        println!(
            "Fig. 7: parallel scaling on {name} — phase times, speedup vs 1 thread,\n\
             and systematic work ratio, {:?} scale",
            args.scale
        );
        println!("{}", table.render());
    }
}
