//! Shared fixtures for the solver integration tests.

use lazymc_solver::BitMatrix;

/// Deterministic pseudo-random graph (xorshift64*, no external RNG):
/// `n` vertices, edge probability `p_permille`/1000.
pub fn pseudo_graph(n: usize, p_permille: u64, seed: u64) -> BitMatrix {
    let mut m = BitMatrix::new(n);
    let mut state = seed | 1;
    for u in 0..n {
        for v in u + 1..n {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            if state.wrapping_mul(0x2545_F491_4F6C_DD1D) % 1000 < p_permille {
                m.add_edge(u, v);
            }
        }
    }
    m
}
