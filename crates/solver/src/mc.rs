//! Dense maximum clique branch-and-bound.
//!
//! The subgraph MC solver of the paper (§IV-E): derived from Bron–Kerbosch
//! with Tomita-style branching — candidates are greedily colored and
//! explored in reverse color order so that `|C| + color(v) <= |C*|` prunes
//! the whole remaining prefix — plus incumbent-size pruning. It operates on
//! the bit-matrix adjacency of the (small, dense) filtered neighbourhood.
//!
//! All per-node state — the candidate set, color order and bounds of every
//! depth, the current and best cliques, the coloring buffers — lives in a
//! reusable [`McScratch`] arena. A node expansion performs **zero heap
//! allocations** once the arena is warm (verified by the counting-allocator
//! test in `tests/zero_alloc.rs`); the paper's work-avoidance thesis cuts
//! both ways, and per-node `memcpy`+`malloc` of bitsets was the largest
//! avoidable work left in the innermost loop.

use crate::bitset::{BitMatrix, Bitset};
use crate::coloring::{color_order_scratch, ColorScratch};

/// Search statistics, used by the work-accounting figures.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct McStats {
    /// Branch-and-bound tree nodes expanded.
    pub nodes: u64,
}

/// Per-depth reusable buffers: the color order, its bounds, and the
/// candidate set owned by that depth.
#[derive(Default)]
struct DepthScratch {
    order: Vec<u32>,
    bound: Vec<u32>,
    cand: Bitset,
}

/// Reusable arena for the dense MC search: all per-depth state plus the
/// coloring buffers and the clique vectors. Hold one per worker and thread
/// it through [`max_clique_dense_scratch`] to make every node expansion
/// allocation-free after warm-up; buffers grow monotonically and are
/// reshaped (never reallocated, once large enough) between solves.
#[derive(Default)]
pub struct McScratch {
    depths: Vec<DepthScratch>,
    color: ColorScratch,
    current: Vec<u32>,
    best_clique: Vec<u32>,
}

impl McScratch {
    /// An empty arena (buffers grow on first use).
    pub fn new() -> Self {
        Self::default()
    }

    /// Heap bytes retained by the arena (pool retention bound).
    pub fn heap_bytes(&self) -> usize {
        self.color.heap_bytes()
            + (self.current.capacity() + self.best_clique.capacity()) * 4
            + self
                .depths
                .iter()
                .map(|d| d.cand.heap_bytes() + (d.order.capacity() + d.bound.capacity()) * 4)
                .sum::<usize>()
    }
}

struct Searcher<'a> {
    adj: &'a BitMatrix,
    best: usize,
    found: bool,
    stats: McStats,
    scratch: &'a mut McScratch,
}

impl Searcher<'_> {
    /// Expands the node whose candidate set the caller placed in
    /// `scratch.depths[depth].cand`.
    fn expand(&mut self, depth: usize) {
        self.stats.nodes += 1;
        // Take this depth's buffers out of the arena for the duration of
        // the frame (empty vectors and a zero-capacity bitset go in; no
        // allocation either way).
        let mut d = std::mem::take(&mut self.scratch.depths[depth]);
        color_order_scratch(
            self.adj,
            &d.cand,
            &mut d.order,
            &mut d.bound,
            &mut self.scratch.color,
        );
        for i in (0..d.order.len()).rev() {
            if self.scratch.current.len() + d.bound[i] as usize <= self.best {
                break; // bounds ascend: everything before i prunes too
            }
            let v = d.order[i] as usize;
            self.scratch.current.push(v as u32);
            if self.scratch.depths.len() <= depth + 1 {
                // First visit to this depth (warm-up): grow the arena.
                self.scratch.depths.push(DepthScratch::default());
            }
            let child = &mut self.scratch.depths[depth + 1];
            // Sized without zeroing: the intersection overwrites every word.
            child.cand.reset_for_overwrite(d.cand.capacity());
            d.cand.intersection_into(self.adj.row(v), &mut child.cand);
            if child.cand.is_empty() {
                if self.scratch.current.len() > self.best {
                    self.best = self.scratch.current.len();
                    self.found = true;
                    self.scratch.best_clique.clear();
                    let current = &self.scratch.current;
                    self.scratch.best_clique.extend_from_slice(current);
                }
            } else {
                self.expand(depth + 1);
            }
            self.scratch.current.pop();
            d.cand.remove(v);
        }
        self.scratch.depths[depth] = d;
    }
}

/// The scratch-arena entry point: finds a maximum clique of the subgraph
/// induced by `within` *if it is larger than `lb`*, writing the witness
/// into `out` and returning whether one was found. `out` is cleared either
/// way. With a warm `scratch` (and `out` at capacity), the search performs
/// no heap allocation at all.
pub fn max_clique_dense_scratch(
    adj: &BitMatrix,
    within: &Bitset,
    lb: usize,
    stats: Option<&mut McStats>,
    scratch: &mut McScratch,
    out: &mut Vec<u32>,
) -> bool {
    out.clear();
    if adj.is_empty() || within.len() <= lb {
        return false;
    }
    if scratch.depths.is_empty() {
        scratch.depths.push(DepthScratch::default());
    }
    scratch.depths[0].cand.copy_from(within);
    scratch.current.clear();
    scratch.best_clique.clear();
    let mut s = Searcher {
        adj,
        best: lb,
        found: false,
        stats: McStats::default(),
        scratch,
    };
    s.expand(0);
    let (found, nodes) = (s.found, s.stats.nodes);
    if let Some(o) = stats {
        o.nodes += nodes;
    }
    if found {
        out.extend_from_slice(&scratch.best_clique);
    }
    found
}

/// Finds a maximum clique of the graph *if it is larger than `lb`*.
///
/// Returns `Some(clique)` with `clique.len() == ω(G) > lb`, or `None` when
/// `ω(G) <= lb` — the caller's incumbent already covers this subgraph.
/// `stats`, when provided, accumulates node counts.
pub fn max_clique_dense(
    adj: &BitMatrix,
    lb: usize,
    stats: Option<&mut McStats>,
) -> Option<Vec<u32>> {
    let n = adj.len();
    if n == 0 || n <= lb {
        return None;
    }
    max_clique_dense_within(adj, &Bitset::full(n), lb, stats)
}

/// [`max_clique_dense`] restricted to the vertices of `within` — used when
/// a reduction pass has already discarded part of the subgraph. One-shot
/// convenience over [`max_clique_dense_scratch`].
pub fn max_clique_dense_within(
    adj: &BitMatrix,
    within: &Bitset,
    lb: usize,
    stats: Option<&mut McStats>,
) -> Option<Vec<u32>> {
    let mut scratch = McScratch::default();
    let mut out = Vec::new();
    max_clique_dense_scratch(adj, within, lb, stats, &mut scratch, &mut out).then_some(out)
}

/// Iterated degree reduction within a candidate set: removes every vertex
/// whose candidate-degree cannot complete a clique of size > `lb`, to a
/// fixpoint. This is the "MC-BRB-style filtering inside the subgraph" the
/// paper names as an easy extension to LazyMC (§V-A); returns the number
/// of vertices removed. Allocation-free: iterates word snapshots instead
/// of cloning the set per round.
pub fn reduce_candidates(adj: &BitMatrix, within: &mut Bitset, lb: usize) -> usize {
    let mut removed = 0usize;
    loop {
        let mut changed = false;
        for wi in 0..within.words().len() {
            let mut w = within.words()[wi];
            while w != 0 {
                let v = wi * 64 + w.trailing_zeros() as usize;
                w &= w - 1;
                // a clique through v has at most deg_within(v) + 1 vertices
                if adj.degree_within(v, within) < lb {
                    within.remove(v);
                    removed += 1;
                    changed = true;
                }
            }
        }
        if !changed {
            return removed;
        }
    }
}

/// Exact maximum clique (no prior bound). Empty graph → empty clique.
pub fn max_clique_exact(adj: &BitMatrix) -> Vec<u32> {
    max_clique_dense(adj, 0, None).unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn from_edges(n: usize, edges: &[(usize, usize)]) -> BitMatrix {
        let mut m = BitMatrix::new(n);
        for &(u, v) in edges {
            m.add_edge(u, v);
        }
        m
    }

    #[test]
    fn triangle() {
        let m = from_edges(4, &[(0, 1), (1, 2), (2, 0), (2, 3)]);
        let c = max_clique_exact(&m);
        assert_eq!(c.len(), 3);
        assert!(m.is_clique(&c));
    }

    #[test]
    fn complete_graph() {
        let mut m = BitMatrix::new(7);
        for u in 0..7 {
            for v in u + 1..7 {
                m.add_edge(u, v);
            }
        }
        assert_eq!(max_clique_exact(&m).len(), 7);
    }

    #[test]
    fn edgeless_graph_clique_is_single_vertex() {
        let m = BitMatrix::new(5);
        assert_eq!(max_clique_exact(&m).len(), 1);
    }

    #[test]
    fn empty_graph() {
        let m = BitMatrix::new(0);
        assert!(max_clique_exact(&m).is_empty());
    }

    #[test]
    fn lower_bound_suppresses_result() {
        let m = from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        assert!(max_clique_dense(&m, 3, None).is_none());
        assert!(max_clique_dense(&m, 4, None).is_none());
        assert_eq!(max_clique_dense(&m, 2, None).unwrap().len(), 3);
    }

    #[test]
    fn two_cliques_picks_larger() {
        // K3 on {0,1,2} and K4 on {3,4,5,6}
        let mut edges = vec![(0, 1), (1, 2), (2, 0)];
        for u in 3..7 {
            for v in u + 1..7 {
                edges.push((u, v));
            }
        }
        edges.push((2, 3)); // bridge
        let m = from_edges(7, &edges);
        let c = max_clique_exact(&m);
        assert_eq!(c.len(), 4);
        let mut c = c;
        c.sort_unstable();
        assert_eq!(c, vec![3, 4, 5, 6]);
    }

    #[test]
    fn petersen_graph_omega_two() {
        // The Petersen graph is triangle-free: ω = 2.
        let outer = [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)];
        let spokes = [(0, 5), (1, 6), (2, 7), (3, 8), (4, 9)];
        let inner = [(5, 7), (7, 9), (9, 6), (6, 8), (8, 5)];
        let edges: Vec<(usize, usize)> =
            outer.iter().chain(&spokes).chain(&inner).copied().collect();
        let m = from_edges(10, &edges);
        assert_eq!(max_clique_exact(&m).len(), 2);
    }

    #[test]
    fn stats_count_nodes() {
        let m = from_edges(4, &[(0, 1), (1, 2), (2, 0), (0, 3), (1, 3)]);
        let mut st = McStats::default();
        let c = max_clique_dense(&m, 0, Some(&mut st));
        assert_eq!(c.unwrap().len(), 3);
        assert!(st.nodes > 0);
    }

    #[test]
    fn scratch_reuse_across_solves_and_sizes() {
        // One arena, many subgraphs of different sizes: results must match
        // fresh-scratch runs exactly (stale per-depth state must not leak).
        let mut scratch = McScratch::new();
        let mut out = Vec::new();
        let graphs: Vec<(BitMatrix, usize)> = vec![
            (from_edges(4, &[(0, 1), (1, 2), (2, 0), (2, 3)]), 3),
            (from_edges(100, &[(0, 99), (99, 50), (50, 0)]), 3),
            (BitMatrix::new(5), 1),
            (from_edges(3, &[(0, 1), (1, 2), (2, 0)]), 3),
        ];
        for (m, omega) in &graphs {
            let found = max_clique_dense_scratch(
                m,
                &Bitset::full(m.len()),
                0,
                None,
                &mut scratch,
                &mut out,
            );
            assert!(found);
            assert_eq!(out.len(), *omega);
            assert!(m.is_clique(&out));
        }
        // lb suppression leaves out empty
        let (m, _) = &graphs[0];
        assert!(!max_clique_dense_scratch(
            m,
            &Bitset::full(m.len()),
            4,
            None,
            &mut scratch,
            &mut out
        ));
        assert!(out.is_empty());
    }

    #[test]
    fn reduce_candidates_removes_low_degree() {
        // Triangle + pendant: lb 2 strips the pendant (degree 1 < 2).
        let m = from_edges(4, &[(0, 1), (1, 2), (2, 0), (2, 3)]);
        let mut within = Bitset::full(4);
        let removed = reduce_candidates(&m, &mut within, 2);
        assert_eq!(removed, 1);
        assert!(!within.contains(3));
        assert_eq!(within.len(), 3);
        // Fixpoint cascades: a path collapses entirely under lb 2.
        let p = from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let mut within = Bitset::full(4);
        assert_eq!(reduce_candidates(&p, &mut within, 2), 4);
        assert!(within.is_empty());
    }
}
