//! Offline stand-in for the subset of `proptest` this workspace uses.
//!
//! A miniature property-testing framework: deterministic generation (each
//! test gets its own RNG seeded from the test name), `proptest!` with
//! `#![proptest_config(...)]`, `x in strategy` bindings, `prop_assert*`,
//! `prop_oneof!`, `prop_map`, tuple/range/collection strategies and
//! `any::<bool>()`. **No shrinking**: a failing case reports its inputs
//! (every bound value is `Debug`-printed into the panic message) but is
//! not minimized. That trades debugging convenience for zero
//! dependencies, which is what an offline build needs.

pub mod strategy;
pub mod test_runner;

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `proptest::collection::vec(element, 0..n)`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = if self.size.is_empty() {
                0
            } else {
                self.size.start + (rng.next_u64() as usize) % (self.size.end - self.size.start)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Per-test configuration (subset: case count).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::TestCaseError;
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// The test-defining macro. Accepts an optional leading
/// `#![proptest_config(expr)]`, then any number of test functions whose
/// parameters are `pattern in strategy` bindings.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::from_name(stringify!($name));
                for case in 0..config.cases {
                    let mut inputs = ::std::string::String::new();
                    $(
                        let value = $crate::strategy::Strategy::generate(&($strat), &mut rng);
                        inputs.push_str(&::std::format!(
                            "  {} = {:?}\n",
                            stringify!($pat),
                            &value
                        ));
                        let $pat = value;
                    )*
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(e) = outcome {
                        ::std::panic!(
                            "proptest case {}/{} failed: {}\ninputs:\n{}",
                            case + 1,
                            config.cases,
                            e,
                            inputs
                        );
                    }
                }
            }
        )*
    };
}

/// `prop_assert!(cond)` / `prop_assert!(cond, "fmt", args…)`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// `prop_assert_eq!(left, right)` with optional trailing format message.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                        ::std::format!(
                            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                            stringify!($left), stringify!($right), l, r
                        ),
                    ));
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                        ::std::format!(
                            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n  {}",
                            stringify!($left), stringify!($right), l, r,
                            ::std::format!($($fmt)+)
                        ),
                    ));
                }
            }
        }
    };
}

/// `prop_assert_ne!(left, right)` with optional trailing format message.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                if *l == *r {
                    return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                        ::std::format!(
                            "assertion failed: `{} != {}`\n  both: {:?}",
                            stringify!($left),
                            stringify!($right),
                            l
                        ),
                    ));
                }
            }
        }
    };
}

/// `prop_oneof![s1, s2, …]` — uniform choice among same-valued strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new()$(.or($strat))+
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn generated_values_honour_strategies(
            x in 5u32..10,
            v in crate::collection::vec(0u32..3, 0..8),
            (a, b) in (0usize..4, 0.0f64..1.0),
            flag in any::<bool>(),
            op in prop_oneof![
                (0u32..5).prop_map(|n| n * 2),
                (0u32..5).prop_map(|n| n * 2 + 1),
            ],
        ) {
            prop_assert!((5..10).contains(&x));
            prop_assert!(v.len() < 8);
            for e in &v {
                prop_assert!(*e < 3, "element {} out of range", e);
            }
            prop_assert!(a < 4 && (0.0..1.0).contains(&b));
            prop_assert!(usize::from(flag) <= 1);
            prop_assert!(op < 10);
        }
    }

    proptest! {
        #[test]
        #[should_panic(expected = "proptest case")]
        fn failing_property_panics_with_inputs(x in 0u32..100) {
            prop_assert!(x < 2, "x was {}", x);
        }
    }
}
