//! Property tests for the `.lmcs` snapshot container: `decode ∘ encode`
//! identity on arbitrary graphs (including the suite's synthetic régimes)
//! and corruption rejection under random byte flips and truncations.

use lazymc_graph::snapshot::{SectionData, Snapshot, SEC_CORENESS};
use lazymc_graph::{gen, CsrGraph};
use proptest::prelude::*;

fn arb_graph() -> impl Strategy<Value = CsrGraph> {
    prop_oneof![
        // Raw edge soup (duplicates/self-loops normalized by the builder).
        proptest::collection::vec((0u32..50, 0u32..50), 0..250)
            .prop_map(|edges| CsrGraph::from_edges(0, &edges)),
        // The synthetic régimes the suite is built from.
        (10usize..80, 0u64..20).prop_map(|(n, seed)| gen::gnp(n, 0.1, seed)),
        (20usize..90, 0u64..20).prop_map(|(n, seed)| gen::planted_clique(n, 0.08, 6, seed)),
        (2usize..40).prop_map(gen::complete),
        (0usize..40).prop_map(CsrGraph::empty),
        (2usize..30, 0u64..10).prop_map(|(n, seed)| gen::barabasi_albert(n.max(3), 2, seed)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// encode ∘ decode is the identity on the graph, its fingerprint, and
    /// any attached sections.
    #[test]
    fn round_trip_identity(g in arb_graph()) {
        let n = g.num_vertices();
        let mut snap = Snapshot::from_graph(&g);
        let coreness: Vec<u32> = (0..n as u32).map(|v| v % 7).collect();
        snap.push_section(SEC_CORENESS, SectionData::U32(coreness.clone()));
        let bytes = snap.encode();
        let back = Snapshot::decode(&bytes).expect("decode of a fresh encode");
        prop_assert_eq!(back.fingerprint, g.fingerprint());
        let h = back.graph().expect("graph reconstruction");
        prop_assert_eq!(&h, &g);
        prop_assert_eq!(back.u32_section(SEC_CORENESS), Some(&coreness[..]));
        // Determinism: same snapshot, same bytes.
        let mut again = Snapshot::from_graph(&g);
        again.push_section(SEC_CORENESS, SectionData::U32(coreness));
        prop_assert_eq!(&bytes, &again.encode());
    }

    /// Any single flipped byte is rejected, wherever it lands.
    #[test]
    fn flipped_byte_rejected(g in arb_graph(), at_frac in 0u64..1000, bit in 0u32..8) {
        let bytes = Snapshot::from_graph(&g).encode();
        let at = (at_frac as usize * bytes.len()) / 1000;
        let at = at.min(bytes.len() - 1);
        let mut corrupt = bytes.clone();
        corrupt[at] ^= 1u8 << bit;
        prop_assert!(
            Snapshot::decode(&corrupt).is_err(),
            "flip of bit {} at byte {}/{} went undetected", bit, at, bytes.len()
        );
    }

    /// Any strict prefix is rejected as truncation.
    #[test]
    fn truncation_rejected(g in arb_graph(), cut_frac in 0u64..1000) {
        let bytes = Snapshot::from_graph(&g).encode();
        let cut = (cut_frac as usize * bytes.len()) / 1000;
        let cut = cut.min(bytes.len() - 1);
        prop_assert!(Snapshot::decode(&bytes[..cut]).is_err());
    }
}
