//! The central correctness property: LazyMC under *arbitrary*
//! configurations must agree with the Bron–Kerbosch oracle on arbitrary
//! random graphs. Work-avoidance is only allowed to change the cost of the
//! search, never its result.

use lazymc_baselines::max_clique_reference;
use lazymc_core::{Config, LazyMc, OrderKind, PrePopulate};
use lazymc_graph::{gen, CsrGraph};
use proptest::prelude::*;

fn arb_graph() -> impl Strategy<Value = CsrGraph> {
    prop_oneof![
        (2usize..50, 0.0f64..0.5, 0u64..10_000).prop_map(|(n, p, s)| gen::gnp(n, p, s)),
        (4usize..40, 0.0f64..0.25, 3usize..9, 0u64..10_000)
            .prop_map(|(n, p, k, s)| gen::planted_clique(n.max(k), p, k.min(n), s)),
        (1usize..5, 3usize..7, 0.0f64..0.4, 0u64..100)
            .prop_map(|(l, k, p, s)| gen::caveman(l, k, p, s)),
        (2usize..40, 0u64..100).prop_map(|(ins, s)| gen::apollonian(ins, s)),
    ]
}

fn arb_config() -> impl Strategy<Value = Config> {
    (
        0usize..3,     // threads (0 = ambient pool)
        0usize..40,    // top_k
        0.0f64..=1.0,  // density threshold
        any::<bool>(), // early_exit
        any::<bool>(), // second_exit
        0usize..3,     // prepopulate selector
        any::<bool>(), // low_core_probes
        any::<bool>(), // kcore_floor
        1usize..4,     // filter_rounds
        any::<bool>(), // peel order?
        any::<bool>(), // subgraph_reduction
    )
        .prop_map(
            |(threads, top_k, phi, ee, se, pp, probes, floor, rounds, peel, red)| Config {
                threads,
                top_k,
                density_threshold: phi,
                early_exit: ee,
                second_exit: se,
                prepopulate: match pp {
                    0 => PrePopulate::None,
                    1 => PrePopulate::Must,
                    _ => PrePopulate::All,
                },
                low_core_probes: probes,
                kcore_floor: floor,
                filter_rounds: rounds,
                order: if peel {
                    OrderKind::Peeling
                } else {
                    OrderKind::CorenessDegree
                },
                subgraph_reduction: red,
                time_budget: None,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn lazymc_matches_oracle_under_any_config(g in arb_graph(), cfg in arb_config()) {
        let oracle = max_clique_reference(&g).len();
        let r = LazyMc::new(cfg.clone()).solve(&g);
        prop_assert!(r.is_exact());
        prop_assert!(g.is_clique(r.vertices()), "non-clique under {cfg:?}");
        prop_assert_eq!(r.size(), oracle, "wrong omega under {:?}", cfg);
    }

    /// A time budget may truncate the proof but never the clique property,
    /// and the result is always a lower bound on ω.
    #[test]
    fn budgeted_solves_are_sound(g in arb_graph(), micros in 0u64..2_000) {
        let oracle = max_clique_reference(&g).len();
        let cfg = Config {
            time_budget: Some(std::time::Duration::from_micros(micros)),
            ..Config::default()
        };
        let r = LazyMc::new(cfg).solve(&g);
        prop_assert!(g.is_clique(r.vertices()));
        prop_assert!(r.size() <= oracle);
        if r.is_exact() {
            prop_assert_eq!(r.size(), oracle);
        }
    }
}
