//! Social-network scenario: a skewed-degree R-MAT graph (the régime of the
//! paper's sinaweibo / orkut datasets, where LazyMC's advantage over
//! eager solvers is largest).
//!
//! Solves the same graph with LazyMC and the PMC-like baseline, prints the
//! side-by-side timings and LazyMC's work-avoidance statistics.
//!
//! Run: `cargo run --release --example social_network`

use lazymc::baselines;
use lazymc::core::{Config, LazyMc};
use lazymc::graph::gen;
use std::time::Instant;

fn main() {
    // ~16k vertices, heavy-tailed degrees, non-trivial clique-core gap.
    let g = gen::rmat(14, 16, 0.57, 0.19, 0.19, 7);
    println!(
        "R-MAT social graph: {} vertices, {} edges, max degree {}",
        g.num_vertices(),
        g.num_edges(),
        g.max_degree()
    );

    let t = Instant::now();
    let lazy = LazyMc::new(Config::default()).solve(&g);
    let lazy_time = t.elapsed();
    println!("LazyMC : ω = {} in {:?}", lazy.size(), lazy_time);

    let t = Instant::now();
    let pmc = baselines::pmc_like(&g);
    let pmc_time = t.elapsed();
    println!("PMC    : ω = {} in {:?}", pmc.len(), pmc_time);
    assert_eq!(lazy.size(), pmc.len(), "solvers must agree");

    println!(
        "speedup over PMC-like: {:.2}x",
        pmc_time.as_secs_f64() / lazy_time.as_secs_f64().max(1e-9)
    );

    // Why is it faster? The filters discharge almost every neighbourhood.
    let m = &lazy.metrics;
    let [c, f1, f2, f3] = m.retention_per_mille();
    println!("\nwork-avoidance profile (neighbourhoods per 1000 vertices):");
    println!("  pass coreness precondition : {c:.2}");
    println!("  survive filter 1           : {f1:.2}");
    println!("  survive filter 2           : {f2:.2}");
    println!("  survive filter 3 (searched): {f3:.2}");
    println!(
        "  lazy graph materialized    : {} hash sets, {} sorted arrays (of {} vertices)",
        m.lazy_built.0,
        m.lazy_built.1,
        g.num_vertices()
    );
}
