//! The shared incumbent clique.
//!
//! Every phase of LazyMC reads the incumbent size on its hot path (filter
//! thresholds, θ values, zone-of-interest tests), so the size lives in an
//! `AtomicUsize` read with `Relaxed` loads, while the witness clique itself
//! sits behind a mutex touched only on (rare) improvements. Updates CAS the
//! size upward first, so losing threads never take the lock.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Shared incumbent: the largest clique observed so far (original ids).
pub struct Incumbent {
    size: Arc<AtomicUsize>,
    clique: Mutex<Vec<u32>>,
}

impl Incumbent {
    /// Empty incumbent.
    pub fn new() -> Self {
        Incumbent {
            size: Arc::new(AtomicUsize::new(0)),
            clique: Mutex::new(Vec::new()),
        }
    }

    /// An empty incumbent publishing its size through an externally
    /// owned cell (live-progress observers keep reading the cell while
    /// the solve runs). The cell is reset to zero — a fresh solve must
    /// not inherit a previous run's floor.
    pub fn with_size_cell(cell: Arc<AtomicUsize>) -> Self {
        cell.store(0, Ordering::Relaxed);
        Incumbent {
            size: cell,
            clique: Mutex::new(Vec::new()),
        }
    }

    /// The shared size cell (handed to the lazy graph for filtering).
    pub fn size_cell(&self) -> Arc<AtomicUsize> {
        self.size.clone()
    }

    /// Current incumbent size.
    #[inline]
    pub fn size(&self) -> usize {
        self.size.load(Ordering::Relaxed)
    }

    /// Offers a candidate clique; returns `true` if it became the new
    /// incumbent. Thread-safe and monotone: the recorded clique only grows.
    pub fn offer(&self, candidate: &[u32]) -> bool {
        let mut cur = self.size.load(Ordering::Relaxed);
        loop {
            if candidate.len() <= cur {
                return false;
            }
            match self.size.compare_exchange_weak(
                cur,
                candidate.len(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    let mut guard = self.clique.lock();
                    // A larger offer may have raced past between our CAS and
                    // the lock; never shrink the witness.
                    if candidate.len() > guard.len() {
                        guard.clear();
                        guard.extend_from_slice(candidate);
                    }
                    return true;
                }
                Err(seen) => cur = seen,
            }
        }
    }

    /// Snapshot of the witness clique.
    pub fn clique(&self) -> Vec<u32> {
        self.clique.lock().clone()
    }
}

impl Default for Incumbent {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offers_are_monotone() {
        let inc = Incumbent::new();
        assert!(inc.offer(&[1, 2, 3]));
        assert_eq!(inc.size(), 3);
        assert!(!inc.offer(&[4, 5]));
        assert_eq!(inc.size(), 3);
        assert_eq!(inc.clique(), vec![1, 2, 3]);
        assert!(inc.offer(&[1, 2, 3, 4]));
        assert_eq!(inc.size(), 4);
    }

    #[test]
    fn equal_size_does_not_replace() {
        let inc = Incumbent::new();
        inc.offer(&[1, 2]);
        assert!(!inc.offer(&[3, 4]));
        assert_eq!(inc.clique(), vec![1, 2]);
    }

    #[test]
    fn concurrent_offers_keep_maximum() {
        use rayon::prelude::*;
        let inc = Incumbent::new();
        (1usize..200).into_par_iter().for_each(|n| {
            let cand: Vec<u32> = (0..n as u32).collect();
            inc.offer(&cand);
        });
        assert_eq!(inc.size(), 199);
        assert_eq!(inc.clique().len(), 199);
    }

    #[test]
    fn size_cell_is_shared() {
        let inc = Incumbent::new();
        let cell = inc.size_cell();
        inc.offer(&[9, 8, 7]);
        assert_eq!(cell.load(Ordering::Relaxed), 3);
    }
}
