//! lazymc-service — a concurrent clique-query daemon.
//!
//! The paper's work-avoidance machinery (filter cascades, incumbent-driven
//! pruning, wall-clock [`lazymc_core::Deadline`]s) makes a LazyMC query
//! cheap enough to sit behind a long-running service. What stays expensive
//! is everything *around* a query: parsing the graph, building CSR,
//! computing coreness. This crate keeps graphs resident and pays those
//! costs once:
//!
//! * [`registry`] — named graph store: load-once CSR graphs with content
//!   fingerprints, precomputed exact k-core decompositions shared by every
//!   query (via [`lazymc_core::LazyMc::solve_prepared`]), LRU-bounded;
//!   plus the result cache keyed by `(fingerprint, canonical config)`.
//! * [`persist`] — optional `--data-dir` durability: every upload is
//!   written as a checksummed `.lmcs` snapshot (atomic temp+fsync+rename),
//!   the directory is index-scanned (headers only) at boot, and a graph
//!   missing from memory is lazily reloaded — CSR *and* coreness — on its
//!   first use after a restart or eviction. Corrupt files are quarantined
//!   with a warning, never crash the daemon.
//! * [`queue`] — bounded deadline-aware priority job queue with
//!   cancellation, ordered exactly like the scheduler (priority desc,
//!   deadline-earliest, FIFO); a full queue surfaces as HTTP 429
//!   backpressure, and each job's budget is a `Deadline` that starts
//!   ticking at enqueue.
//! * [`protocol`] — request/response types over a minimal hand-rolled
//!   JSON (no serde; the workspace allows no third-party dependencies
//!   beyond its vendored shims).
//! * [`jobs`] — the asynchronous job lifecycle: every solve is a job
//!   with an id, a cancellable ticket + deadline, and a sink; completed
//!   `?async=1` results are retained in a byte-bounded, TTL-evicting
//!   store for `GET /jobs/<id>` polling.
//! * [`conn`] / [`reactor`] — the event-driven I/O path: epoll reactor
//!   threads (via `lazymc-netio`) own every socket, parse requests
//!   incrementally, and buffer partial writes; introspection endpoints
//!   answer *on* the reactor, so `/healthz` stays microseconds even with
//!   every solver busy.
//! * [`overload`] — overload control: the drain-rate estimator behind
//!   every `Retry-After`, the CoDel-style admission shedder driven by
//!   observed queue wait, and soft/hard memory watermarks over the
//!   counting allocator's live-byte gauge.
//! * [`obs`] — per-daemon observability built on `lazymc-obs`: route- and
//!   phase-labelled latency histograms, request tracing (`X-Request-Id`
//!   in → spans → structured JSON log lines out), and the slow-query log
//!   behind `GET /debug/slow`.
//! * [`server`] — configuration, routing, the request-worker pool, the
//!   machine-wide `lazymc-sched` work-stealing pool all solves execute
//!   on (root jobs *and* stolen subtrees; `--solver-workers` sizes it —
//!   see `docs/scheduler.md`), and the Prometheus `/metrics` endpoint
//!   exposing `lazymc_core::metrics` counters plus cache, reactor and
//!   scheduler telemetry.
//!
//! # Quick start
//!
//! ```
//! use lazymc_service::{serve, ServiceConfig};
//! use std::io::{Read, Write};
//!
//! let handle = serve(ServiceConfig {
//!     addr: "127.0.0.1:0".into(), // free port
//!     ..ServiceConfig::default()
//! })
//! .unwrap();
//!
//! let mut conn = std::net::TcpStream::connect(handle.addr()).unwrap();
//! let body = r#"{"name":"tri","format":"edgelist","content":"0 1\n1 2\n2 0\n"}"#;
//! write!(
//!     conn,
//!     "POST /graphs HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
//!     body.len(),
//!     body
//! )
//! .unwrap();
//! let mut response = String::new();
//! conn.read_to_string(&mut response).unwrap();
//! assert!(response.starts_with("HTTP/1.1 201"));
//! handle.stop();
//! ```

// The request path must never die of an avoidable panic: a poisoned lock,
// a "can't happen" unwrap. Fault-injection (crates/chaos) now exercises
// those paths, and this deny holds the line. Sites with a real invariant
// argument carry a targeted allow.
#![deny(clippy::unwrap_used)]

pub mod conn;
pub mod health;
pub mod jobs;
pub mod journal;
pub mod obs;
pub mod overload;
pub mod persist;
pub mod protocol;
pub mod queue;
pub mod reactor;
pub mod registry;
pub mod server;

pub use conn::{Request, Response};
pub use health::Health;
pub use jobs::{JobState, JobStore};
pub use journal::{Journal, ReplayedJob};
pub use lazymc_obs::LogSink;
pub use obs::ServiceObs;
pub use overload::{DrainRate, MemLevel, MemWatermarks, Shedder};
pub use persist::SnapshotStore;
pub use protocol::{Json, LoadRequest, SolveRequest};
pub use queue::{JobQueue, JobTicket, QueueFull};
pub use registry::{CachedSolve, GraphEntry, Registry, ResultCache};
pub use server::{serve, ServiceConfig, ServiceHandle, ServiceMetrics, ServiceState};

/// Locks ignoring poison. Every mutex in this crate guards state that
/// stays consistent across an unwind (counters, maps, heaps mutated in
/// single statements), so a panic on another thread — real or
/// chaos-injected — must not cascade into every thread that touches the
/// same lock.
pub(crate) fn plock<T>(m: &std::sync::Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}
