//! Immutable undirected graphs in compressed sparse row (CSR) form.
//!
//! Invariants maintained by every constructor in this crate:
//!
//! * adjacency lists are sorted ascending and free of duplicates;
//! * the graph is symmetric (`(u,v)` present iff `(v,u)` present);
//! * no self-loops.
//!
//! These invariants are what the intersection kernels and the lazy graph
//! rely on; [`CsrGraph::validate`] checks them explicitly and is used by the
//! property tests.

use crate::VertexId;

/// An immutable, undirected, simple graph in CSR form.
#[derive(Clone, PartialEq, Eq)]
pub struct CsrGraph {
    /// `offsets[v]..offsets[v+1]` indexes `targets` for vertex `v`.
    offsets: Vec<usize>,
    /// Concatenated sorted adjacency lists; length is twice the number of
    /// undirected edges.
    targets: Vec<VertexId>,
}

impl CsrGraph {
    /// Builds a graph from raw CSR parts.
    ///
    /// # Panics
    /// Panics if the parts are structurally inconsistent (non-monotone
    /// offsets or out-of-range targets). Sortedness/symmetry are *not*
    /// checked here (use [`CsrGraph::validate`]); all in-crate constructors
    /// guarantee them.
    pub fn from_parts(offsets: Vec<usize>, targets: Vec<VertexId>) -> Self {
        assert!(!offsets.is_empty(), "offsets must contain at least [0]");
        assert_eq!(*offsets.first().unwrap(), 0);
        assert_eq!(*offsets.last().unwrap(), targets.len());
        assert!(
            offsets.windows(2).all(|w| w[0] <= w[1]),
            "offsets must be monotone"
        );
        let n = offsets.len() - 1;
        debug_assert!(targets.iter().all(|&t| (t as usize) < n));
        Self { offsets, targets }
    }

    /// Convenience constructor from an undirected edge list. Duplicates,
    /// self-loops and one-directional edges are tolerated (see
    /// [`crate::GraphBuilder`]).
    pub fn from_edges(n: usize, edges: &[(VertexId, VertexId)]) -> Self {
        let mut b = crate::GraphBuilder::with_capacity(n, edges.len());
        for &(u, v) in edges {
            b.add_edge(u, v);
        }
        b.build()
    }

    /// An empty graph on `n` isolated vertices.
    pub fn empty(n: usize) -> Self {
        Self {
            offsets: vec![0; n + 1],
            targets: Vec::new(),
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.targets.len() / 2
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        let v = v as usize;
        self.offsets[v + 1] - self.offsets[v]
    }

    /// Sorted neighbourhood of `v`.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        let v = v as usize;
        &self.targets[self.offsets[v]..self.offsets[v + 1]]
    }

    /// Membership test via binary search on the sorted adjacency list.
    #[inline]
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// Iterator over all vertices.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        0..self.num_vertices() as VertexId
    }

    /// Iterator over each undirected edge once, as `(u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        self.vertices().flat_map(move |u| {
            self.neighbors(u)
                .iter()
                .copied()
                .filter(move |&v| u < v)
                .map(move |v| (u, v))
        })
    }

    /// Degrees of all vertices.
    pub fn degrees(&self) -> Vec<u32> {
        (0..self.num_vertices())
            .map(|v| (self.offsets[v + 1] - self.offsets[v]) as u32)
            .collect()
    }

    /// Maximum degree (0 for the empty graph).
    pub fn max_degree(&self) -> usize {
        (0..self.num_vertices())
            .map(|v| self.offsets[v + 1] - self.offsets[v])
            .max()
            .unwrap_or(0)
    }

    /// Edge density `2m / (n (n-1))`; 0 for graphs with fewer than 2 vertices.
    pub fn density(&self) -> f64 {
        let n = self.num_vertices() as f64;
        if n < 2.0 {
            return 0.0;
        }
        (self.targets.len() as f64) / (n * (n - 1.0))
    }

    /// The subgraph induced by `verts` (which need not be sorted). Vertices
    /// are renumbered `0..verts.len()` in the order given; the returned map
    /// sends new ids back to ids of `self`.
    ///
    /// # Panics
    /// Panics if `verts` contains duplicates or out-of-range ids.
    pub fn induced_subgraph(&self, verts: &[VertexId]) -> (CsrGraph, Vec<VertexId>) {
        let n = self.num_vertices();
        let mut new_id = vec![crate::NO_VERTEX; n];
        for (i, &v) in verts.iter().enumerate() {
            assert!((v as usize) < n, "vertex {v} out of range");
            assert_eq!(
                new_id[v as usize],
                crate::NO_VERTEX,
                "duplicate vertex {v} in induced_subgraph"
            );
            new_id[v as usize] = i as VertexId;
        }
        let mut offsets = Vec::with_capacity(verts.len() + 1);
        offsets.push(0usize);
        let mut targets = Vec::new();
        for &v in verts {
            let mut row: Vec<VertexId> = self
                .neighbors(v)
                .iter()
                .filter_map(|&u| {
                    let nu = new_id[u as usize];
                    (nu != crate::NO_VERTEX).then_some(nu)
                })
                .collect();
            row.sort_unstable();
            targets.extend_from_slice(&row);
            offsets.push(targets.len());
        }
        (CsrGraph { offsets, targets }, verts.to_vec())
    }

    /// The complement graph (no self-loops). Quadratic in `n`; intended for
    /// the small filtered subgraphs handed to the k-VC solver.
    pub fn complement(&self) -> CsrGraph {
        let n = self.num_vertices();
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0usize);
        let mut targets = Vec::new();
        for v in 0..n as VertexId {
            let nbrs = self.neighbors(v);
            let mut it = nbrs.iter().copied().peekable();
            for u in 0..n as VertexId {
                if u == v {
                    continue;
                }
                while let Some(&x) = it.peek() {
                    if x < u {
                        it.next();
                    } else {
                        break;
                    }
                }
                if it.peek() != Some(&u) {
                    targets.push(u);
                }
            }
            offsets.push(targets.len());
        }
        CsrGraph { offsets, targets }
    }

    /// Relabels the graph: vertex `v` of `self` becomes `rank[v]` in the
    /// result. `rank` must be a permutation of `0..n`.
    pub fn relabel(&self, rank: &[VertexId]) -> CsrGraph {
        let n = self.num_vertices();
        assert_eq!(rank.len(), n);
        // degree of new vertex rank[v] equals degree of v
        let mut offsets = vec![0usize; n + 1];
        for v in 0..n {
            offsets[rank[v] as usize + 1] = self.degree(v as VertexId);
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        let mut targets = vec![0 as VertexId; self.targets.len()];
        for v in 0..n as VertexId {
            let nv = rank[v as usize] as usize;
            let row = &mut targets[offsets[nv]..offsets[nv] + self.degree(v)];
            for (slot, &u) in row.iter_mut().zip(self.neighbors(v)) {
                *slot = rank[u as usize];
            }
            row.sort_unstable();
        }
        CsrGraph { offsets, targets }
    }

    /// Checks every structural invariant; returns a description of the first
    /// violation found.
    pub fn validate(&self) -> Result<(), String> {
        let n = self.num_vertices();
        for v in 0..n as VertexId {
            let nbrs = self.neighbors(v);
            for w in nbrs.windows(2) {
                if w[0] >= w[1] {
                    return Err(format!("adjacency of {v} not strictly sorted"));
                }
            }
            for &u in nbrs {
                if u == v {
                    return Err(format!("self-loop at {v}"));
                }
                if (u as usize) >= n {
                    return Err(format!("target {u} out of range at {v}"));
                }
                if !self.has_edge(u, v) {
                    return Err(format!("asymmetric edge ({v},{u})"));
                }
            }
        }
        Ok(())
    }

    /// Content fingerprint of the graph structure: equal graphs (same CSR
    /// arrays, i.e. same vertex set and adjacency) fingerprint equally on
    /// every platform and run. FNV-1a over `n` and the CSR arrays — cheap
    /// enough to compute at load time, stable enough to key caches across
    /// re-uploads of the same dataset.
    pub fn fingerprint(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        let mut mix = |x: u64| {
            for byte in x.to_le_bytes() {
                h ^= byte as u64;
                h = h.wrapping_mul(PRIME);
            }
        };
        mix(self.num_vertices() as u64);
        // Offsets are determined by the degree sequence; hashing the degree
        // gaps keeps the loop branch-free and position-dependent.
        for w in self.offsets.windows(2) {
            mix((w[1] - w[0]) as u64);
        }
        for &t in &self.targets {
            mix(t as u64);
        }
        h
    }

    /// The raw CSR arrays `(offsets, targets)`, in the exact form
    /// [`CsrGraph::from_parts`] accepts. This is the serialization surface:
    /// [`crate::snapshot`] writes these arrays verbatim.
    pub fn raw_parts(&self) -> (&[usize], &[VertexId]) {
        (&self.offsets, &self.targets)
    }

    /// Whether `clique` (ids of `self`) forms a clique.
    pub fn is_clique(&self, clique: &[VertexId]) -> bool {
        for (i, &u) in clique.iter().enumerate() {
            for &v in &clique[i + 1..] {
                if u == v || !self.has_edge(u, v) {
                    return false;
                }
            }
        }
        true
    }
}

impl std::fmt::Debug for CsrGraph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "CsrGraph {{ n: {}, m: {} }}",
            self.num_vertices(),
            self.num_edges()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle_plus_pendant() -> CsrGraph {
        // 0-1-2 triangle, 3 pendant off 0
        CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 0), (0, 3)])
    }

    #[test]
    fn basic_accessors() {
        let g = triangle_plus_pendant();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.degree(0), 3);
        assert_eq!(g.degree(3), 1);
        assert_eq!(g.neighbors(0), &[1, 2, 3]);
        assert!(g.has_edge(1, 2));
        assert!(!g.has_edge(1, 3));
        assert!(g.validate().is_ok());
    }

    #[test]
    fn empty_graph() {
        let g = CsrGraph::empty(5);
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.density(), 0.0);
        assert!(g.validate().is_ok());
    }

    #[test]
    fn zero_vertex_graph() {
        let g = CsrGraph::empty(0);
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.edges().count(), 0);
    }

    #[test]
    fn edges_iterator_yields_each_edge_once() {
        let g = triangle_plus_pendant();
        let es: Vec<_> = g.edges().collect();
        assert_eq!(es, vec![(0, 1), (0, 2), (0, 3), (1, 2)]);
    }

    #[test]
    fn induced_subgraph_of_triangle() {
        let g = triangle_plus_pendant();
        let (sub, map) = g.induced_subgraph(&[2, 0, 1]);
        assert_eq!(sub.num_vertices(), 3);
        assert_eq!(sub.num_edges(), 3);
        assert_eq!(map, vec![2, 0, 1]);
        assert!(sub.validate().is_ok());
        // all pairs connected
        assert!(sub.is_clique(&[0, 1, 2]));
    }

    #[test]
    fn induced_subgraph_empty_selection() {
        let g = triangle_plus_pendant();
        let (sub, _) = g.induced_subgraph(&[]);
        assert_eq!(sub.num_vertices(), 0);
    }

    #[test]
    #[should_panic(expected = "duplicate vertex")]
    fn induced_subgraph_rejects_duplicates() {
        let g = triangle_plus_pendant();
        let _ = g.induced_subgraph(&[0, 0]);
    }

    #[test]
    fn complement_of_triangle_plus_pendant() {
        let g = triangle_plus_pendant();
        let c = g.complement();
        assert!(c.validate().is_ok());
        // K4 has 6 edges; g has 4, complement has 2.
        assert_eq!(c.num_edges(), 2);
        assert!(c.has_edge(1, 3));
        assert!(c.has_edge(2, 3));
        assert!(!c.has_edge(0, 1));
    }

    #[test]
    fn complement_involution() {
        let g = triangle_plus_pendant();
        assert_eq!(g.complement().complement(), g);
    }

    #[test]
    fn relabel_reverse_permutation() {
        let g = triangle_plus_pendant();
        let rank: Vec<u32> = vec![3, 2, 1, 0];
        let r = g.relabel(&rank);
        assert!(r.validate().is_ok());
        assert_eq!(r.degree(3), 3); // old 0
        assert!(r.has_edge(3, 0)); // old (0,3)
        assert!(r.has_edge(2, 1)); // old (1,2)
    }

    #[test]
    fn is_clique_detects_non_cliques() {
        let g = triangle_plus_pendant();
        assert!(g.is_clique(&[0, 1, 2]));
        assert!(!g.is_clique(&[0, 1, 3]));
        assert!(g.is_clique(&[0]));
        assert!(g.is_clique(&[]));
        assert!(!g.is_clique(&[0, 0]));
    }

    #[test]
    fn density_of_complete_graph_is_one() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
        assert!((g.density() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fingerprint_distinguishes_structure() {
        let g = triangle_plus_pendant();
        // Same content → same fingerprint, independent of construction path.
        let h = CsrGraph::from_edges(4, &[(0, 3), (2, 0), (1, 2), (0, 1)]);
        assert_eq!(g.fingerprint(), h.fingerprint());
        // One edge of difference → different fingerprint.
        let k = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 0), (1, 3)]);
        assert_ne!(g.fingerprint(), k.fingerprint());
        // Isolated vertices count: same edges, more vertices.
        let wider = CsrGraph::from_edges(5, &[(0, 1), (1, 2), (2, 0), (0, 3)]);
        assert_ne!(g.fingerprint(), wider.fingerprint());
        assert_ne!(
            CsrGraph::empty(0).fingerprint(),
            CsrGraph::empty(1).fingerprint()
        );
    }
}
