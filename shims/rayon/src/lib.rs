//! Offline stand-in for the subset of `rayon` this workspace uses.
//!
//! The build container has no network access to crates.io, so the
//! workspace vendors the exact API surface it needs. Unlike the first
//! iteration of this shim (which only parallelized `for_each`), every
//! element-wise *stage* now genuinely fans out across threads:
//!
//! * adaptors (`map`, `filter`, `flat_map_iter`) materialize their input,
//!   split it into one contiguous chunk per available thread, and apply
//!   the stage closure under [`std::thread::scope`], concatenating the
//!   per-chunk outputs in order — so `collect` preserves sequential
//!   ordering (and therefore the stability of the parallel counting
//!   sort built on top of it);
//! * consumers `for_each`, `any` (with a shared early-exit flag),
//!   `reduce` and `sum` (chunked partial folds) run in parallel;
//!   `max`, `count` and `collect` consume the already-parallel
//!   materialized stage output;
//! * [`ParallelSliceMut::par_sort_unstable`] is a parallel chunk sort
//!   followed by an iterative out-of-place run merge.
//!
//! Closure bounds follow rayon (`Fn + Sync`, `Item: Send`), so call
//! sites stay source-compatible with the real crate. Small inputs (and
//! `threads == 1`, e.g. under `Config::sequential`) take the sequential
//! path — fan-out costs a thread spawn per chunk here, so it is reserved
//! for inputs where the stage work dominates.
//!
//! [`ThreadPoolBuilder::num_threads`] + [`ThreadPool::install`] scope a
//! thread-count override that [`current_num_threads`] and every parallel
//! operation honour, so `Config { threads, .. }` keeps its meaning
//! (notably `threads: 1` forces a fully sequential solve).

use std::cell::Cell;
use std::ops::{Range, RangeInclusive};
use std::sync::atomic::{AtomicBool, Ordering};

thread_local! {
    /// 0 means "no override": fall back to the machine parallelism.
    static POOL_THREADS: Cell<usize> = const { Cell::new(0) };
}

fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Number of threads parallel operations currently fan out to.
pub fn current_num_threads() -> usize {
    let t = POOL_THREADS.with(|c| c.get());
    if t == 0 {
        default_threads()
    } else {
        t
    }
}

/// Builder mirroring `rayon::ThreadPoolBuilder` (thread count only).
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

/// Error type for [`ThreadPoolBuilder::build`]; building never fails here.
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

impl ThreadPoolBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: if self.num_threads == 0 {
                default_threads()
            } else {
                self.num_threads
            },
        })
    }
}

/// A scoped thread-count override, not an actual pool of threads: workers
/// are spawned per parallel stage under `std::thread::scope`.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Runs `op` with this pool's thread count as the ambient parallelism.
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        struct Restore(usize);
        impl Drop for Restore {
            fn drop(&mut self) {
                POOL_THREADS.with(|c| c.set(self.0));
            }
        }
        let prev = POOL_THREADS.with(|c| c.replace(self.num_threads));
        let _restore = Restore(prev);
        op()
    }

    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }
}

// ---------------------------------------------------------------------------
// Parallel engine
// ---------------------------------------------------------------------------

/// Below this many items an element-wise stage stays sequential: the
/// per-chunk thread spawn would cost more than the stage saves.
const PAR_THRESHOLD: usize = 512;

/// Whether a stage over `len` items should fan out across `threads`.
///
/// Two régimes parallelize: many items (fine-grained work amortizes the
/// spawns), and *few* items relative to the thread count — the
/// caller-pre-chunked pattern (e.g. the counting sort mapping one heavy
/// histogram closure per chunk), where each item is coarse by
/// construction and leaving them sequential would serialize the heavy
/// half of the algorithm. The in-between band (tens to hundreds of
/// cheap items) stays sequential.
#[inline]
fn should_fan_out(len: usize, threads: usize) -> bool {
    threads > 1 && len > 1 && (len >= PAR_THRESHOLD || len <= threads.saturating_mul(2))
}

/// Splits `items` into at most `parts` contiguous runs, preserving order.
fn split_chunks<T>(mut items: Vec<T>, parts: usize) -> Vec<Vec<T>> {
    let chunk = items.len().div_ceil(parts.max(1));
    let mut out = Vec::with_capacity(parts);
    while items.len() > chunk {
        out.push(items.split_off(items.len() - chunk));
    }
    out.push(items);
    out.reverse(); // tails were split off back-to-front
    out
}

/// Runs `work` over each chunk on its own scoped thread (first chunk on
/// the calling thread), returning per-chunk results in order. Worker
/// threads inherit the ambient thread-count override so nested parallel
/// stages see the same `current_num_threads`.
fn fan_out<T: Send, R: Send>(chunks: Vec<Vec<T>>, work: impl Fn(Vec<T>) -> R + Sync) -> Vec<R> {
    let inherited = current_num_threads();
    let mut chunks = chunks.into_iter();
    let first = chunks.next();
    let mut results: Vec<R> = Vec::new();
    std::thread::scope(|s| {
        let work = &work;
        let handles: Vec<_> = chunks
            .map(|ch| {
                s.spawn(move || {
                    POOL_THREADS.with(|c| c.set(inherited));
                    work(ch)
                })
            })
            .collect();
        let mine = first.map(work);
        results.reserve(handles.len() + 1);
        results.extend(mine);
        // A worker panic propagates here, as with rayon.
        results.extend(handles.into_iter().map(|h| h.join().unwrap()));
    });
    results
}

fn par_map_vec<T: Send, O: Send>(items: Vec<T>, f: impl Fn(T) -> O + Sync) -> Vec<O> {
    let threads = current_num_threads().clamp(1, items.len().max(1));
    if !should_fan_out(items.len(), threads) {
        return items.into_iter().map(f).collect();
    }
    let per_chunk = fan_out(split_chunks(items, threads), |ch| {
        ch.into_iter().map(&f).collect::<Vec<O>>()
    });
    concat(per_chunk)
}

fn par_flat_map_vec<T: Send, O: Send, U: IntoIterator<Item = O>>(
    items: Vec<T>,
    f: impl Fn(T) -> U + Sync,
) -> Vec<O> {
    let threads = current_num_threads().clamp(1, items.len().max(1));
    if !should_fan_out(items.len(), threads) {
        return items.into_iter().flat_map(f).collect();
    }
    let per_chunk = fan_out(split_chunks(items, threads), |ch| {
        ch.into_iter().flat_map(&f).collect::<Vec<O>>()
    });
    concat(per_chunk)
}

fn concat<O>(per_chunk: Vec<Vec<O>>) -> Vec<O> {
    let mut out = Vec::with_capacity(per_chunk.iter().map(Vec::len).sum());
    for r in per_chunk {
        out.extend(r);
    }
    out
}

fn par_for_each_vec<T: Send>(items: Vec<T>, f: impl Fn(T) + Sync) {
    let threads = current_num_threads().clamp(1, items.len().max(1));
    if threads <= 1 {
        items.into_iter().for_each(f);
        return;
    }
    fan_out(split_chunks(items, threads), |ch| {
        ch.into_iter().for_each(&f)
    });
}

fn par_any_vec<T: Send>(items: Vec<T>, f: impl Fn(T) -> bool + Sync) -> bool {
    let threads = current_num_threads().clamp(1, items.len().max(1));
    if !should_fan_out(items.len(), threads) {
        return items.into_iter().any(f);
    }
    let found = AtomicBool::new(false);
    fan_out(split_chunks(items, threads), |ch| {
        for item in ch {
            if found.load(Ordering::Relaxed) {
                return;
            }
            if f(item) {
                found.store(true, Ordering::Relaxed);
                return;
            }
        }
    });
    found.load(Ordering::Relaxed)
}

// ---------------------------------------------------------------------------
// The iterator trait and its adaptors
// ---------------------------------------------------------------------------

/// The shim's `rayon::iter::ParallelIterator`.
///
/// [`ParallelIterator::materialize`] is the shim-internal driver: it
/// produces every item, in order, running this stage's element-wise work
/// across threads. All adaptors and consumers are built on it.
pub trait ParallelIterator: Sized {
    type Item: Send;

    /// Produces all items in sequential order, fanning the stage's work
    /// out across threads (shim-internal; rayon has no such method).
    fn materialize(self) -> Vec<Self::Item>;

    fn map<O: Send, F: Fn(Self::Item) -> O + Sync>(self, f: F) -> Map<Self, F> {
        Map { base: self, f }
    }

    fn filter<F: Fn(&Self::Item) -> bool + Sync>(self, f: F) -> Filter<Self, F> {
        Filter { base: self, f }
    }

    fn flat_map_iter<U, F>(self, f: F) -> FlatMapIter<Self, F>
    where
        U: IntoIterator,
        U::Item: Send,
        F: Fn(Self::Item) -> U + Sync,
    {
        FlatMapIter { base: self, f }
    }

    fn rev(self) -> Rev<Self> {
        Rev { base: self }
    }

    fn copied<'a, T>(self) -> Copied<Self>
    where
        T: 'a + Copy + Send,
        Self: ParallelIterator<Item = &'a T>,
    {
        Copied { base: self }
    }

    fn zip<J: IntoParallelIterator>(self, other: J) -> Zip<Self, J::Iter> {
        Zip {
            a: self,
            b: other.into_par_iter(),
        }
    }

    fn for_each<F: Fn(Self::Item) + Sync>(self, f: F) {
        par_for_each_vec(self.materialize(), f);
    }

    fn any<F: Fn(Self::Item) -> bool + Sync>(self, f: F) -> bool {
        par_any_vec(self.materialize(), f)
    }

    fn collect<C: FromIterator<Self::Item>>(self) -> C {
        self.materialize().into_iter().collect()
    }

    fn count(self) -> usize {
        self.materialize().len()
    }

    fn max(self) -> Option<Self::Item>
    where
        Self::Item: Ord,
    {
        self.reduce_opt(|a, b| if b > a { b } else { a })
    }

    /// Parallel reduction with an associative `op` (rayon's `reduce`):
    /// chunked partial folds, then a fold of the partials.
    fn reduce<ID, OP>(self, identity: ID, op: OP) -> Self::Item
    where
        ID: Fn() -> Self::Item + Sync,
        OP: Fn(Self::Item, Self::Item) -> Self::Item + Sync,
    {
        let items = self.materialize();
        let threads = current_num_threads().clamp(1, items.len().max(1));
        if !should_fan_out(items.len(), threads) {
            return items.into_iter().fold(identity(), &op);
        }
        let partials = fan_out(split_chunks(items, threads), |ch| {
            ch.into_iter().fold(identity(), &op)
        });
        partials.into_iter().fold(identity(), &op)
    }

    /// `reduce` without an identity; `None` on an empty iterator.
    fn reduce_opt<OP>(self, op: OP) -> Option<Self::Item>
    where
        OP: Fn(Self::Item, Self::Item) -> Self::Item + Sync,
    {
        let items = self.materialize();
        let threads = current_num_threads().clamp(1, items.len().max(1));
        if !should_fan_out(items.len(), threads) {
            return items.into_iter().reduce(&op);
        }
        let partials = fan_out(split_chunks(items, threads), |ch| {
            ch.into_iter().reduce(&op)
        });
        partials.into_iter().flatten().reduce(&op)
    }

    /// Parallel sum: chunked partial sums, then a sum of the partials
    /// (rayon's bound: the accumulator sums both items and partials).
    fn sum<S>(self) -> S
    where
        S: Send + std::iter::Sum<Self::Item> + std::iter::Sum<S>,
    {
        let items = self.materialize();
        let threads = current_num_threads().clamp(1, items.len().max(1));
        if !should_fan_out(items.len(), threads) {
            return items.into_iter().sum();
        }
        fan_out(split_chunks(items, threads), |ch| ch.into_iter().sum::<S>())
            .into_iter()
            .sum()
    }
}

/// Base parallel iterator: a thin wrapper over a cheap std iterator
/// (range, slice iter, `vec::IntoIter`); producing the base items is
/// sequential, every stage stacked on top fans out.
pub struct Par<I>(I);

impl<I: Iterator> ParallelIterator for Par<I>
where
    I::Item: Send,
{
    type Item = I::Item;
    fn materialize(self) -> Vec<I::Item> {
        self.0.collect()
    }
}

pub struct Map<P, F> {
    base: P,
    f: F,
}

impl<P: ParallelIterator, O: Send, F: Fn(P::Item) -> O + Sync> ParallelIterator for Map<P, F> {
    type Item = O;
    fn materialize(self) -> Vec<O> {
        par_map_vec(self.base.materialize(), self.f)
    }
}

pub struct Filter<P, F> {
    base: P,
    f: F,
}

impl<P: ParallelIterator, F: Fn(&P::Item) -> bool + Sync> ParallelIterator for Filter<P, F> {
    type Item = P::Item;
    fn materialize(self) -> Vec<P::Item> {
        let f = self.f;
        par_flat_map_vec(self.base.materialize(), |x| f(&x).then_some(x))
    }
}

pub struct FlatMapIter<P, F> {
    base: P,
    f: F,
}

impl<P, U, F> ParallelIterator for FlatMapIter<P, F>
where
    P: ParallelIterator,
    U: IntoIterator,
    U::Item: Send,
    F: Fn(P::Item) -> U + Sync,
{
    type Item = U::Item;
    fn materialize(self) -> Vec<U::Item> {
        par_flat_map_vec(self.base.materialize(), self.f)
    }
}

pub struct Rev<P> {
    base: P,
}

impl<P: ParallelIterator> ParallelIterator for Rev<P> {
    type Item = P::Item;
    fn materialize(self) -> Vec<P::Item> {
        let mut items = self.base.materialize();
        items.reverse();
        items
    }
}

pub struct Copied<P> {
    base: P,
}

impl<'a, T, P> ParallelIterator for Copied<P>
where
    T: 'a + Copy + Send,
    P: ParallelIterator<Item = &'a T>,
{
    type Item = T;
    fn materialize(self) -> Vec<T> {
        // A copy per item is cheaper than a thread spawn; stay sequential.
        self.base.materialize().into_iter().copied().collect()
    }
}

pub struct Zip<A, B> {
    a: A,
    b: B,
}

impl<A: ParallelIterator, B: ParallelIterator> ParallelIterator for Zip<A, B> {
    type Item = (A::Item, B::Item);
    fn materialize(self) -> Vec<(A::Item, B::Item)> {
        self.a
            .materialize()
            .into_iter()
            .zip(self.b.materialize())
            .collect()
    }
}

// ---------------------------------------------------------------------------
// Conversions
// ---------------------------------------------------------------------------

/// Conversion into a [`ParallelIterator`] (rayon's `IntoParallelIterator`).
pub trait IntoParallelIterator {
    type Item: Send;
    type Iter: ParallelIterator<Item = Self::Item>;
    fn into_par_iter(self) -> Self::Iter;
}

impl<I: Iterator> IntoParallelIterator for Par<I>
where
    I::Item: Send,
{
    type Item = I::Item;
    type Iter = Par<I>;
    fn into_par_iter(self) -> Par<I> {
        self
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = Par<std::vec::IntoIter<T>>;
    fn into_par_iter(self) -> Self::Iter {
        Par(self.into_iter())
    }
}

impl<T> IntoParallelIterator for Range<T>
where
    Range<T>: Iterator<Item = T>,
    T: Send,
{
    type Item = T;
    type Iter = Par<Range<T>>;
    fn into_par_iter(self) -> Self::Iter {
        Par(self)
    }
}

impl<T> IntoParallelIterator for RangeInclusive<T>
where
    RangeInclusive<T>: Iterator<Item = T>,
    T: Send,
{
    type Item = T;
    type Iter = Par<RangeInclusive<T>>;
    fn into_par_iter(self) -> Self::Iter {
        Par(self)
    }
}

/// `.par_iter()` on slices (and, via deref, `Vec`).
pub trait ParallelSlice<T: Sync> {
    fn par_iter(&self) -> Par<std::slice::Iter<'_, T>>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> Par<std::slice::Iter<'_, T>> {
        Par(self.iter())
    }
}

/// `.par_iter_mut()` / `.par_sort_unstable()` on mutable slices.
pub trait ParallelSliceMut<T: Send> {
    fn par_iter_mut(&mut self) -> Par<std::slice::IterMut<'_, T>>;
    fn par_sort_unstable(&mut self)
    where
        T: Ord;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_iter_mut(&mut self) -> Par<std::slice::IterMut<'_, T>> {
        Par(self.iter_mut())
    }

    fn par_sort_unstable(&mut self)
    where
        T: Ord,
    {
        par_merge_sort(self);
    }
}

// ---------------------------------------------------------------------------
// Parallel unstable sort: chunk sort + iterative run merge
// ---------------------------------------------------------------------------

fn par_merge_sort<T: Ord + Send>(v: &mut [T]) {
    let threads = current_num_threads();
    if threads <= 1 || v.len() < 2 * PAR_THRESHOLD {
        v.sort_unstable();
        return;
    }
    let parts = threads.min(v.len());
    let chunk_len = v.len().div_ceil(parts);
    let inherited = current_num_threads();
    std::thread::scope(|s| {
        let mut rest: &mut [T] = v;
        let mut first: Option<&mut [T]> = None;
        while !rest.is_empty() {
            let take = chunk_len.min(rest.len());
            let (chunk, tail) = std::mem::take(&mut rest).split_at_mut(take);
            rest = tail;
            if first.is_none() {
                first = Some(chunk);
            } else {
                s.spawn(move || {
                    POOL_THREADS.with(|c| c.set(inherited));
                    chunk.sort_unstable();
                });
            }
        }
        if let Some(chunk) = first {
            chunk.sort_unstable();
        }
    });
    // Merge sorted runs of doubling width through a scratch buffer.
    let mut buf: Vec<T> = Vec::with_capacity(v.len());
    let mut width = chunk_len;
    while width < v.len() {
        let mut start = 0;
        while start + width < v.len() {
            let end = (start + 2 * width).min(v.len());
            merge_runs(&mut v[start..end], width, &mut buf);
            start = end;
        }
        width *= 2;
    }
}

/// Merges the two sorted runs `v[..mid]` and `v[mid..]` through `buf`.
/// `buf` is used as raw storage: elements are bitwise-moved out and back,
/// its `len` stays 0, so no element is ever dropped (or double-dropped)
/// by the buffer — even if a comparison panics mid-merge, `v` still owns
/// every original.
fn merge_runs<T: Ord>(v: &mut [T], mid: usize, buf: &mut Vec<T>) {
    buf.clear();
    buf.reserve(v.len());
    let len = v.len();
    unsafe {
        let src = v.as_ptr();
        let dst = buf.as_mut_ptr();
        let (mut i, mut j, mut k) = (0usize, mid, 0usize);
        while i < mid && j < len {
            let take_j = *src.add(j) < *src.add(i);
            let from = if take_j { j } else { i };
            std::ptr::copy_nonoverlapping(src.add(from), dst.add(k), 1);
            if take_j {
                j += 1;
            } else {
                i += 1;
            }
            k += 1;
        }
        if i < mid {
            std::ptr::copy_nonoverlapping(src.add(i), dst.add(k), mid - i);
            k += mid - i;
        }
        if j < len {
            std::ptr::copy_nonoverlapping(src.add(j), dst.add(k), len - j);
            k += len - j;
        }
        debug_assert_eq!(k, len);
        std::ptr::copy_nonoverlapping(dst, v.as_mut_ptr(), len);
    }
}

pub mod prelude {
    pub use crate::{IntoParallelIterator, Par, ParallelIterator, ParallelSlice, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::collections::HashSet;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    #[test]
    fn for_each_visits_everything() {
        let hits: Vec<AtomicUsize> = (0..10_000).map(|_| AtomicUsize::new(0)).collect();
        (0..10_000usize).into_par_iter().for_each(|i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn adaptors_match_sequential() {
        let v: Vec<u32> = (0..100).collect();
        let doubled: Vec<u32> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled[99], 198);
        assert_eq!(v.par_iter().copied().max(), Some(99));
        assert!((0..100u32).into_par_iter().any(|x| x == 57));
        let evens: Vec<u32> = (0..10u32).into_par_iter().filter(|x| x % 2 == 0).collect();
        assert_eq!(evens, vec![0, 2, 4, 6, 8]);
    }

    #[test]
    fn install_scopes_thread_count() {
        let pool = crate::ThreadPoolBuilder::new()
            .num_threads(3)
            .build()
            .unwrap();
        pool.install(|| assert_eq!(crate::current_num_threads(), 3));
        assert_ne!(crate::current_num_threads(), 0);
    }

    #[test]
    fn zip_and_rev() {
        let a = [1u32, 2, 3];
        let b = vec![10u32, 20, 30];
        let sums: Vec<u32> = a
            .par_iter()
            .zip(b.into_par_iter())
            .map(|(x, y)| x + y)
            .collect();
        assert_eq!(sums, vec![11, 22, 33]);
        let r: Vec<u32> = (0..3u32).into_par_iter().rev().collect();
        assert_eq!(r, vec![2, 1, 0]);
    }

    #[test]
    fn map_collect_preserves_order_large() {
        // Above the parallel threshold, across several chunks.
        let n = 100_000u64;
        let squares: Vec<u64> = (0..n).into_par_iter().map(|x| x * x).collect();
        assert_eq!(squares.len(), n as usize);
        for (i, &s) in squares.iter().enumerate() {
            assert_eq!(s, (i as u64) * (i as u64));
        }
    }

    #[test]
    fn map_stage_runs_on_multiple_threads() {
        // Even on a single-core machine, an explicit pool override fans
        // the stage out to scoped worker threads.
        let pool = crate::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap();
        let seen: Mutex<HashSet<std::thread::ThreadId>> = Mutex::new(HashSet::new());
        let out: Vec<u32> = pool.install(|| {
            (0..20_000u32)
                .into_par_iter()
                .map(|x| {
                    if x % 1000 == 0 {
                        seen.lock().unwrap().insert(std::thread::current().id());
                    }
                    x + 1
                })
                .collect()
        });
        assert_eq!(out[19_999], 20_000);
        assert!(
            seen.lock().unwrap().len() > 1,
            "map stage must fan out across threads"
        );
    }

    #[test]
    fn filter_and_flat_map_parallel_match_sequential() {
        let keep: Vec<u32> = (0..50_000u32)
            .into_par_iter()
            .filter(|x| x % 7 == 0)
            .collect();
        let expect: Vec<u32> = (0..50_000u32).filter(|x| x % 7 == 0).collect();
        assert_eq!(keep, expect);
        let expanded: Vec<u32> = (0..20_000u32)
            .into_par_iter()
            .flat_map_iter(|x| (0..x % 3).map(move |i| x + i))
            .collect();
        let expect: Vec<u32> = (0..20_000u32)
            .flat_map(|x| (0..x % 3).map(move |i| x + i))
            .collect();
        assert_eq!(expanded, expect);
    }

    #[test]
    fn reduce_and_sum_parallel() {
        let n = 100_001u64;
        let total: u64 = (0..n).into_par_iter().sum();
        assert_eq!(total, n * (n - 1) / 2);
        let m = (0..n).into_par_iter().reduce(|| 0, u64::max);
        assert_eq!(m, n - 1);
        let empty: u64 = (0..0u64).into_par_iter().sum();
        assert_eq!(empty, 0);
        assert_eq!((0..0u64).into_par_iter().max(), None);
    }

    #[test]
    fn any_early_exits_and_finds() {
        assert!((0..100_000u32).into_par_iter().any(|x| x == 99_999));
        assert!(!(0..100_000u32).into_par_iter().any(|x| x > 100_000));
    }

    #[test]
    fn par_sort_matches_std_sort() {
        // Deterministic pseudo-random u32s, above the parallel cutoff.
        let mut v: Vec<u32> = (0..100_000u32)
            .map(|i| i.wrapping_mul(2_654_435_761))
            .collect();
        let mut expect = v.clone();
        expect.sort_unstable();
        let pool = crate::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap();
        pool.install(|| v.par_sort_unstable());
        assert_eq!(v, expect);
    }

    #[test]
    fn par_sort_non_copy_types() {
        // Strings exercise the move-based merge (no Copy, has Drop).
        let mut v: Vec<String> = (0..5_000u32)
            .map(|i| format!("{:05}", i.wrapping_mul(48_271) % 10_000))
            .collect();
        let mut expect = v.clone();
        expect.sort_unstable();
        let pool = crate::ThreadPoolBuilder::new()
            .num_threads(3)
            .build()
            .unwrap();
        pool.install(|| v.par_sort_unstable());
        assert_eq!(v, expect);
    }

    #[test]
    fn sequential_override_stays_on_calling_thread() {
        let pool = crate::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .unwrap();
        let caller = std::thread::current().id();
        pool.install(|| {
            (0..10_000u32).into_par_iter().for_each(|_| {
                assert_eq!(std::thread::current().id(), caller);
            });
        });
    }
}
