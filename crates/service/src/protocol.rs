//! Wire protocol: a minimal hand-rolled JSON value type (no serde — the
//! workspace promises no third-party crates beyond the vendored shims) and
//! the typed request bodies the daemon accepts.
//!
//! The JSON subset is complete for this protocol's needs: objects, arrays,
//! strings with escapes (including `\uXXXX` and surrogate pairs), numbers,
//! booleans, null. The parser is recursive descent with a depth limit.

use lazymc_core::{Config, OrderKind};
use std::fmt::Write as _;
use std::time::Duration;

/// Maximum nesting depth the parser accepts.
const MAX_DEPTH: usize = 64;

/// A JSON value. Object keys keep insertion order (encode is deterministic).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses a complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing garbage at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Serializes to a compact JSON string.
    pub fn encode(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(x) => {
                if x.fract() == 0.0 && x.abs() < 9.0e15 {
                    let _ = write!(out, "{}", *x as i64);
                } else {
                    let _ = write!(out, "{x}");
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as an exactly-representable unsigned integer.
    ///
    /// Accepts only integers in `[0, 2^53)`: an f64 holds every integer in
    /// that range exactly, while above it consecutive integers collide
    /// (`2^53 + 1` parses to the same f64 as `2^53`), so a huge
    /// `budget_ms` or `top_k` would silently round. Out-of-range values
    /// are rejected, not clamped — the caller typed something this
    /// protocol cannot faithfully carry.
    pub fn as_u64(&self) -> Option<u64> {
        const MAX_EXACT: f64 = 9_007_199_254_740_992.0; // 2^53
        match self {
            Json::Num(x) if *x >= 0.0 && x.fract() == 0.0 && *x < MAX_EXACT => Some(*x as u64),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Convenience constructor for object literals.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    pub fn num(x: impl Into<f64>) -> Json {
        Json::Num(x.into())
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, String> {
        if depth > MAX_DEPTH {
            return Err("nesting too deep".into());
        }
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        // The scanned range is ASCII digits/signs/exponents only.
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap_or("");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|e| format!("bad number {text:?}: {e}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require a \uXXXX *low*
                                // half; anything else is invalid JSON, not
                                // something to silently decode wrong.
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    if (0xDC00..0xE000).contains(&lo) {
                                        let combined =
                                            0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                        char::from_u32(combined)
                                    } else {
                                        None
                                    }
                                } else {
                                    None
                                }
                            } else {
                                // Lone low surrogates fail char::from_u32.
                                char::from_u32(hi)
                            };
                            out.push(c.ok_or_else(|| "bad \\u escape".to_string())?);
                            continue; // hex4 advanced pos already
                        }
                        other => return Err(format!("bad escape {:?}", other.map(|c| c as char))),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Copy a run of plain UTF-8 bytes verbatim.
                    let start = self.pos;
                    while self.peek().is_some_and(|c| c != b'"' && c != b'\\') {
                        self.pos += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|e| format!("invalid UTF-8 in string: {e}"))?;
                    out.push_str(chunk);
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        if self.pos + 4 > self.bytes.len() {
            return Err("truncated \\u escape".into());
        }
        let text = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| "bad \\u escape".to_string())?;
        let v = u32::from_str_radix(text, 16).map_err(|_| "bad \\u escape".to_string())?;
        self.pos += 4;
        Ok(v)
    }

    fn array(&mut self, depth: usize) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

/// Body of `POST /graphs`.
#[derive(Debug)]
pub struct LoadRequest {
    pub name: String,
    /// `edgelist`, `dimacs`, `mtx`, or `suite` (content names a suite
    /// instance; `scale` selects `test`/`standard`).
    pub format: String,
    pub content: String,
    pub scale: Option<String>,
}

impl LoadRequest {
    pub fn from_json(v: &Json) -> Result<LoadRequest, String> {
        let name = v
            .get("name")
            .and_then(Json::as_str)
            .ok_or("missing string field \"name\"")?;
        if name.is_empty() || name.len() > 128 || !name.chars().all(valid_name_char) {
            return Err("graph names must be 1-128 chars of [A-Za-z0-9._-]".into());
        }
        let format = v.get("format").and_then(Json::as_str).unwrap_or("edgelist");
        if !matches!(format, "edgelist" | "dimacs" | "mtx" | "suite") {
            return Err(format!("unknown format {format:?}"));
        }
        let content = v
            .get("content")
            .and_then(Json::as_str)
            .ok_or("missing string field \"content\"")?;
        Ok(LoadRequest {
            name: name.to_string(),
            format: format.to_string(),
            content: content.to_string(),
            scale: v.get("scale").and_then(Json::as_str).map(str::to_string),
        })
    }
}

fn valid_name_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-')
}

/// Body of `POST /solve`.
#[derive(Debug, Clone)]
pub struct SolveRequest {
    pub graph: String,
    /// 0 (lowest) ..= 9 (highest); ties FIFO.
    pub priority: u8,
    /// Wall-clock budget, measured from *enqueue* (queue wait included).
    pub budget_ms: Option<u64>,
    pub threads: Option<usize>,
    pub top_k: Option<usize>,
    pub phi: Option<f64>,
    pub filter_rounds: Option<usize>,
    pub order: Option<String>,
    /// Skip the result cache for this query (both lookup and fill).
    pub no_cache: bool,
}

impl SolveRequest {
    pub fn from_json(v: &Json) -> Result<SolveRequest, String> {
        let graph = v
            .get("graph")
            .and_then(Json::as_str)
            .ok_or("missing string field \"graph\"")?;
        let priority = match v.get("priority").map(|p| p.as_u64()) {
            None => 1,
            Some(Some(p)) if p <= 9 => p as u8,
            _ => return Err("\"priority\" must be an integer in 0..=9".into()),
        };
        let order = v.get("order").and_then(Json::as_str).map(str::to_string);
        if let Some(o) = &order {
            if o != "cd" && o != "peel" {
                return Err(format!("unknown order {o:?} (use \"cd\" or \"peel\")"));
            }
        }
        // Optional integer fields must be exactly-representable or absent:
        // a `budget_ms` beyond 2^53 must not silently round (or worse,
        // vanish into "no budget at all") — it is a 400.
        let opt_u64 = |key: &str| -> Result<Option<u64>, String> {
            match v.get(key) {
                None | Some(Json::Null) => Ok(None),
                Some(x) => x
                    .as_u64()
                    .map(Some)
                    .ok_or_else(|| format!("\"{key}\" must be an integer in [0, 2^53)")),
            }
        };
        Ok(SolveRequest {
            graph: graph.to_string(),
            priority,
            budget_ms: opt_u64("budget_ms")?,
            threads: opt_u64("threads")?.map(|x| x as usize),
            top_k: opt_u64("top_k")?.map(|x| x as usize),
            phi: v.get("phi").and_then(Json::as_f64),
            filter_rounds: opt_u64("filter_rounds")?.map(|x| (x as usize).max(1)),
            order,
            no_cache: v.get("no_cache").and_then(Json::as_bool).unwrap_or(false),
        })
    }

    /// Serializes back to the body shape [`SolveRequest::from_json`]
    /// accepts. The job journal stores admitted requests in this form so a
    /// crash-recovery replay re-parses them through the exact same
    /// validation and clamping as the original submission.
    pub fn to_json(&self) -> Json {
        let mut pairs: Vec<(String, Json)> = vec![
            ("graph".into(), Json::Str(self.graph.clone())),
            ("priority".into(), Json::Num(f64::from(self.priority))),
        ];
        // Every field `from_json` accepted is exactly representable as f64
        // (as_u64 enforces < 2^53), so this round-trips losslessly.
        if let Some(x) = self.budget_ms {
            pairs.push(("budget_ms".into(), Json::Num(x as f64)));
        }
        if let Some(x) = self.threads {
            pairs.push(("threads".into(), Json::Num(x as f64)));
        }
        if let Some(x) = self.top_k {
            pairs.push(("top_k".into(), Json::Num(x as f64)));
        }
        if let Some(x) = self.phi {
            pairs.push(("phi".into(), Json::Num(x)));
        }
        if let Some(x) = self.filter_rounds {
            pairs.push(("filter_rounds".into(), Json::Num(x as f64)));
        }
        if let Some(o) = &self.order {
            pairs.push(("order".into(), Json::Str(o.clone())));
        }
        if self.no_cache {
            pairs.push(("no_cache".into(), Json::Bool(true)));
        }
        Json::Obj(pairs)
    }

    /// The solver configuration this request asks for.
    pub fn config(&self) -> Config {
        let mut cfg = Config::default();
        if let Some(t) = self.threads {
            // Cap client-requested thread counts: beyond ~2× the machine
            // there is no speedup, only a thread-spawn DoS. The cap is the
            // system-wide one in core (`Config::thread_cap`), shared with
            // the CLI, the bench harness, and the daemon's worker pools;
            // the server additionally clamps against its solver pool.
            cfg.threads = Config::clamp_threads(t);
        }
        if let Some(k) = self.top_k {
            cfg.top_k = k;
        }
        if let Some(phi) = self.phi {
            cfg.density_threshold = phi;
        }
        if let Some(r) = self.filter_rounds {
            cfg.filter_rounds = r;
        }
        if self.order.as_deref() == Some("peel") {
            cfg.order = OrderKind::Peeling;
        }
        cfg.time_budget = self.budget_ms.map(Duration::from_millis);
        cfg
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn parse_encode_roundtrip() {
        let text = r#"{"a":[1,2.5,-3],"b":"x\ny\"z","c":{"d":true,"e":null},"f":false}"#;
        let v = Json::parse(text).unwrap();
        assert_eq!(Json::parse(&v.encode()).unwrap(), v);
        assert_eq!(
            v.get("a").unwrap(),
            &Json::Arr(vec![Json::Num(1.0), Json::Num(2.5), Json::Num(-3.0)])
        );
        assert_eq!(v.get("b").and_then(Json::as_str), Some("x\ny\"z"));
        assert_eq!(
            v.get("c").unwrap().get("d").and_then(Json::as_bool),
            Some(true)
        );
    }

    #[test]
    fn unicode_escapes() {
        let v = Json::parse(r#""\u0041\u00e9\ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str(), Some("Aé😀"));
        // Round-trip of raw (unescaped) unicode.
        let w = Json::Str("héllo 😀".into());
        assert_eq!(Json::parse(&w.encode()).unwrap(), w);
    }

    #[test]
    fn rejects_garbage() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\" 1}",
            "tru",
            "1 2",
            "\"\\q\"",
            "{\"a\":}",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn rejects_invalid_surrogates() {
        // High surrogate followed by a non-surrogate escape, a bare high
        // surrogate, a bare low surrogate, and a high+high pair are all
        // invalid JSON, not silently-miscoded characters.
        for bad in [
            r#""\ud800\u0041""#,
            r#""\ud800""#,
            r#""\udc00""#,
            r#""\ud800\ud800""#,
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn requested_thread_counts_are_capped() {
        let v = Json::parse(r#"{"graph":"g","threads":4000000000}"#).unwrap();
        let cfg = SolveRequest::from_json(&v).unwrap().config();
        // The cap is the single system-wide one defined in core.
        assert_eq!(cfg.threads, Config::thread_cap());
        // Small explicit values survive untouched (0 = ambient pool).
        let v = Json::parse(r#"{"graph":"g","threads":1}"#).unwrap();
        assert_eq!(SolveRequest::from_json(&v).unwrap().config().threads, 1);
        let v = Json::parse(r#"{"graph":"g","threads":0}"#).unwrap();
        assert_eq!(SolveRequest::from_json(&v).unwrap().config().threads, 0);
    }

    #[test]
    fn as_u64_is_exact_or_nothing() {
        let cases: &[(&str, Option<u64>)] = &[
            ("0", Some(0)),
            ("1", Some(1)),
            // Largest exactly-representable integer below 2^53.
            ("9007199254740991", Some(9_007_199_254_740_991)),
            // 2^53 itself: representable, but 2^53+1 parses to the same
            // f64, so accepting it would silently alias two inputs.
            ("9007199254740992", None),
            ("9007199254740993", None),
            // u64::MAX and beyond: far outside exact range.
            ("18446744073709551615", None),
            ("1e300", None),
            // Non-integers and negatives.
            ("1.5", None),
            ("-1", None),
            ("-0.0", Some(0)),
        ];
        for (text, expected) in cases {
            let v = Json::parse(text).unwrap();
            assert_eq!(v.as_u64(), *expected, "as_u64({text})");
        }
        assert_eq!(Json::Str("7".into()).as_u64(), None);
        assert_eq!(Json::Bool(true).as_u64(), None);
    }

    #[test]
    fn oversized_budget_and_top_k_are_rejected_not_rounded() {
        // 2^60: would previously pass the 1.9e19 guard and round silently —
        // and a silent None here would mean "no budget at all".
        let v = Json::parse(r#"{"graph":"g","budget_ms":1152921504606846976}"#).unwrap();
        let err = SolveRequest::from_json(&v).unwrap_err();
        assert!(err.contains("budget_ms"), "error names the field: {err}");
        let v = Json::parse(r#"{"graph":"g","top_k":9007199254740993}"#).unwrap();
        assert!(SolveRequest::from_json(&v).is_err());
        let v = Json::parse(r#"{"graph":"g","threads":-1}"#).unwrap();
        assert!(SolveRequest::from_json(&v).is_err());
        let v = Json::parse(r#"{"graph":"g","filter_rounds":2.5}"#).unwrap();
        assert!(SolveRequest::from_json(&v).is_err());
        // Boundary: the largest exact integer is accepted, 2^53 is not.
        let v = Json::parse(r#"{"graph":"g","budget_ms":9007199254740991}"#).unwrap();
        assert_eq!(
            SolveRequest::from_json(&v).unwrap().budget_ms,
            Some(9_007_199_254_740_991)
        );
        let v = Json::parse(r#"{"graph":"g","budget_ms":9007199254740992}"#).unwrap();
        assert!(SolveRequest::from_json(&v).is_err());
        // A sane large budget still works, and null means absent.
        let v = Json::parse(r#"{"graph":"g","budget_ms":86400000}"#).unwrap();
        assert_eq!(
            SolveRequest::from_json(&v).unwrap().budget_ms,
            Some(86_400_000)
        );
        let v = Json::parse(r#"{"graph":"g","budget_ms":null}"#).unwrap();
        assert_eq!(SolveRequest::from_json(&v).unwrap().budget_ms, None);
    }

    #[test]
    fn rejects_deep_nesting() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(Json::parse(&deep).is_err());
    }

    #[test]
    fn integers_encode_without_fraction() {
        assert_eq!(Json::Num(3.0).encode(), "3");
        assert_eq!(Json::Num(3.5).encode(), "3.5");
        assert_eq!(Json::Num(-0.25).encode(), "-0.25");
    }

    #[test]
    fn solve_request_parses_and_builds_config() {
        let v = Json::parse(
            r#"{"graph":"g1","priority":7,"budget_ms":250,"threads":2,"phi":0.3,"order":"peel"}"#,
        )
        .unwrap();
        let r = SolveRequest::from_json(&v).unwrap();
        assert_eq!(r.graph, "g1");
        assert_eq!(r.priority, 7);
        let cfg = r.config();
        assert_eq!(cfg.threads, 2);
        assert_eq!(cfg.density_threshold, 0.3);
        assert_eq!(cfg.order, OrderKind::Peeling);
        assert_eq!(cfg.time_budget, Some(Duration::from_millis(250)));
    }

    #[test]
    fn solve_request_json_round_trips() {
        for text in [
            r#"{"graph":"g1","priority":7,"budget_ms":250,"threads":2,"phi":0.3,"order":"peel","no_cache":true}"#,
            r#"{"graph":"g2"}"#,
            r#"{"graph":"g3","top_k":5,"filter_rounds":3}"#,
        ] {
            let v = Json::parse(text).unwrap();
            let r = SolveRequest::from_json(&v).unwrap();
            let r2 = SolveRequest::from_json(&r.to_json()).unwrap();
            assert_eq!(format!("{r:?}"), format!("{r2:?}"), "round trip of {text}");
        }
    }

    #[test]
    fn solve_request_rejects_bad_fields() {
        let bad_priority = Json::parse(r#"{"graph":"g","priority":12}"#).unwrap();
        assert!(SolveRequest::from_json(&bad_priority).is_err());
        let bad_order = Json::parse(r#"{"graph":"g","order":"zigzag"}"#).unwrap();
        assert!(SolveRequest::from_json(&bad_order).is_err());
        let no_graph = Json::parse(r#"{"priority":1}"#).unwrap();
        assert!(SolveRequest::from_json(&no_graph).is_err());
    }

    #[test]
    fn load_request_validates_names() {
        let ok = Json::parse(r#"{"name":"my-graph.v2","content":"0 1"}"#).unwrap();
        assert!(LoadRequest::from_json(&ok).is_ok());
        let bad = Json::parse(r#"{"name":"../etc/passwd","content":"0 1"}"#).unwrap();
        assert!(LoadRequest::from_json(&bad).is_err());
        let bad2 = Json::parse(r#"{"name":"a b","content":"0 1"}"#).unwrap();
        assert!(LoadRequest::from_json(&bad2).is_err());
    }
}
