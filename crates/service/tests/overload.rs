//! Overload-control and lifecycle integration tests, live sockets against
//! an in-process daemon: dead-on-arrival reaping, CoDel-style shedding
//! with drain-rate Retry-After, the `/readyz` drain flip, and the
//! background snapshot scrubber quarantining injected bit-rot.

mod common;

use common::{bool_field, str_field, upload, Client};
use lazymc_graph::gen;
use lazymc_service::{serve, Json, ServiceConfig, ServiceHandle};
use std::time::{Duration, Instant};

fn start(cfg: ServiceConfig) -> ServiceHandle {
    serve(ServiceConfig {
        addr: "127.0.0.1:0".into(),
        ..cfg
    })
    .expect("bind service")
}

/// Submits an async solve, returning (status, body json).
fn submit_async(client: &mut Client, body: &str) -> (u16, Json) {
    let (status, _, text) = client.request("POST", "/solve?async=1", Some(body));
    (status, Json::parse(&text).expect("json body"))
}

/// A job whose deadline expires while it waits in the queue must be
/// reaped at pop time — failed with a reaping error, never solved.
#[test]
fn dead_on_arrival_jobs_are_reaped_not_solved() {
    let handle = start(ServiceConfig {
        solver_workers: 1,
        workers: 2,
        ..ServiceConfig::default()
    });
    let mut c = Client::connect(handle.addr());
    upload(&mut c, "dense", &gen::gnp(300, 0.5, 7));

    // Pin the lone solver for ~700 ms, and wait until the pin is
    // actually running: the pool pops deadline-earliest, so a
    // shorter-deadline job submitted while the pin still sits in the
    // queue would overtake it and solve instead of expiring.
    let (status, pin) = submit_async(
        &mut c,
        r#"{"graph":"dense","budget_ms":700,"no_cache":true}"#,
    );
    assert_eq!(status, 202, "pin submit: {pin:?}");
    let pin_id = pin.get("job_id").and_then(Json::as_u64).expect("job_id");
    let t = Instant::now();
    loop {
        let (_, job) = c.get_json(&format!("/jobs/{pin_id}"));
        if str_field(&job, "status") != "queued" {
            break;
        }
        assert!(
            t.elapsed() < Duration::from_secs(10),
            "pin job never started"
        );
        std::thread::sleep(Duration::from_millis(5));
    }

    // Queue a job that can only expire behind it: 40 ms budget, measured
    // from enqueue, against the remainder of the pin's ~700 ms run.
    let (status, doa) = submit_async(
        &mut c,
        r#"{"graph":"dense","budget_ms":40,"no_cache":true}"#,
    );
    assert_eq!(status, 202, "doa submit: {doa:?}");
    let doa_id = doa.get("job_id").and_then(Json::as_u64).expect("job_id");

    let t = Instant::now();
    loop {
        let (_, job) = c.get_json(&format!("/jobs/{doa_id}"));
        let state = str_field(&job, "status").to_string();
        if state == "failed" {
            let err = job
                .get("result")
                .and_then(|r| r.get("error"))
                .and_then(Json::as_str)
                .unwrap_or_else(|| panic!("failed job must carry an error: {job:?}"))
                .to_string();
            assert!(
                err.contains("reaped") && err.contains("deadline"),
                "DOA failure must say it was reaped, got {err:?}"
            );
            break;
        }
        assert_ne!(state, "done", "expired job must never produce a result");
        assert!(
            t.elapsed() < Duration::from_secs(15),
            "DOA job never reaped (state {state:?})"
        );
        std::thread::sleep(Duration::from_millis(25));
    }
    assert!(c.metric("lazymc_jobs_doa_total") >= 1);
    handle.stop();
}

/// Sustained queue wait above the target flips the shedder; further
/// same-priority admissions get 503 with a drain-rate `Retry-After`.
#[test]
fn overload_sheds_with_retry_after() {
    let handle = start(ServiceConfig {
        solver_workers: 1,
        workers: 2,
        queue_capacity: 256,
        queue_delay_target_ms: Some(1),
        ..ServiceConfig::default()
    });
    let mut c = Client::connect(handle.addr());
    upload(&mut c, "dense", &gen::gnp(300, 0.5, 7));

    // One ~300 ms job to build queue wait, then a train of ~40 ms jobs
    // so pops (each observing >1 ms wait) span the 100 ms CoDel interval.
    let (status, _) = submit_async(
        &mut c,
        r#"{"graph":"dense","budget_ms":300,"no_cache":true}"#,
    );
    assert_eq!(status, 202);
    for _ in 0..8 {
        let (status, _) = submit_async(
            &mut c,
            r#"{"graph":"dense","budget_ms":40,"no_cache":true}"#,
        );
        assert_eq!(status, 202);
    }

    // Keep offering work; once the controller flips, a submit is shed.
    let t = Instant::now();
    let shed = loop {
        let (status, headers, body) = c.request(
            "POST",
            "/solve?async=1",
            Some(r#"{"graph":"dense","budget_ms":40,"no_cache":true}"#),
        );
        if status == 503 {
            break (headers, body);
        }
        assert_eq!(status, 202, "unexpected response under load: {body}");
        assert!(
            t.elapsed() < Duration::from_secs(20),
            "controller never shed despite sustained over-target waits"
        );
        std::thread::sleep(Duration::from_millis(20));
    };
    let (headers, body) = shed;
    assert!(body.contains("overloaded"), "shed body: {body}");
    let retry_after: u64 = headers
        .iter()
        .find(|(k, _)| k == "retry-after")
        .map(|(_, v)| v.parse().expect("numeric Retry-After"))
        .expect("shed response must carry Retry-After");
    assert!((1..=60).contains(&retry_after), "retry_after {retry_after}");
    assert!(c.metric("lazymc_overload_shed_total") >= 1);

    // The advice must come from the observed drain rate, not a constant:
    // with jobs completing, the estimator reports a nonzero rate.
    let (_, _, text) = c.request("GET", "/metrics", None);
    let rate: f64 = text
        .lines()
        .find(|l| l.starts_with("lazymc_drain_rate_per_sec "))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|v| v.parse().ok())
        .expect("drain rate gauge");
    assert!(rate > 0.0, "drain rate should be observed, got {rate}");
    handle.stop();
}

/// `begin_drain` flips `/readyz` to 503 while `/healthz` stays 200, and
/// in-flight keep-alive connections are told `Connection: close`.
#[test]
fn drain_flips_readyz_but_not_healthz() {
    let handle = start(ServiceConfig {
        solver_workers: 1,
        ..ServiceConfig::default()
    });
    let addr = handle.addr();

    // Pre-open both probe connections: the listener closes at drain.
    let mut ready_probe = Client::connect(addr);
    let mut health_probe = Client::connect(addr);
    let (status, _, _) = ready_probe.request("GET", "/readyz", None);
    assert_eq!(status, 200, "daemon must be ready before drain");

    handle.begin_drain();
    // Probe within the drain idle grace (500 ms) so the sweeper has not
    // reaped these idle connections yet.
    let (status, headers, _) = ready_probe.request("GET", "/readyz", None);
    assert_eq!(status, 503, "/readyz must refuse while draining");
    assert!(
        headers
            .iter()
            .any(|(k, v)| k == "connection" && v.eq_ignore_ascii_case("close")),
        "drain responses must advertise Connection: close, got {headers:?}"
    );
    let (status, _, body) = health_probe.request("GET", "/healthz", None);
    assert_eq!(status, 200, "/healthz stays live through a drain");
    let v = Json::parse(&body).expect("healthz json");
    assert!(bool_field(&v, "draining"), "healthz must report the phase");

    // Nothing was admitted, so the drain completes immediately.
    handle.wait();
    handle.stop();
}

/// Submissions racing a drain are refused with an explicit 503, not
/// silently queued into a daemon that is about to exit.
#[test]
fn drain_refuses_new_work() {
    let handle = start(ServiceConfig::default());
    let mut c = Client::connect(handle.addr());
    upload(&mut c, "g", &gen::gnp(40, 0.3, 3));

    handle.begin_drain();
    let (status, _, body) = c.request("POST", "/solve", Some(r#"{"graph":"g","no_cache":true}"#));
    assert_eq!(status, 503, "draining daemon must refuse new solves");
    assert!(body.contains("draining"), "body: {body}");
    handle.wait();
    handle.stop();
}

/// The background scrubber detects a flipped byte in a durable snapshot,
/// quarantines the file, and degrades `/healthz`.
#[test]
fn scrubber_quarantines_flipped_snapshot_byte() {
    let dir = std::env::temp_dir().join(format!("lazymc_scrub_it_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("mkdir");

    let handle = start(ServiceConfig {
        data_dir: Some(dir.to_str().expect("utf8 dir").to_string()),
        scrub_interval: Some(Duration::from_millis(200)),
        ..ServiceConfig::default()
    });
    let mut c = Client::connect(handle.addr());
    upload(&mut c, "rotme", &gen::gnp(60, 0.3, 5));

    // Flip one byte in the middle of the snapshot payload.
    let snap = dir.join("rotme.lmcs");
    assert!(snap.is_file(), "upload must write a durable snapshot");
    let mut bytes = std::fs::read(&snap).expect("read snapshot");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01;
    std::fs::write(&snap, &bytes).expect("re-write snapshot");

    let t = Instant::now();
    while c.metric("lazymc_snapshots_quarantined_total") == 0 {
        assert!(
            t.elapsed() < Duration::from_secs(15),
            "scrubber never quarantined the corrupted snapshot"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
    assert!(c.metric("lazymc_scrub_corruptions_total") >= 1);
    assert!(c.metric("lazymc_scrub_passes_total") >= 1);
    assert!(
        !snap.exists() && dir.join("rotme.lmcs.corrupt").is_file(),
        "corrupted snapshot must be moved aside, not left in place"
    );
    let (status, _, body) = c.request("GET", "/healthz", None);
    assert_eq!(status, 200);
    let v = Json::parse(&body).expect("healthz json");
    assert_eq!(str_field(&v, "state"), "degraded");
    assert!(
        body.contains("rotme"),
        "degradation reason should name the snapshot: {body}"
    );
    handle.stop();
    let _ = std::fs::remove_dir_all(&dir);
}
