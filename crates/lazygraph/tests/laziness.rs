//! Property tests for the lazy graph: filtering correctness, memoization,
//! and the representation-divergence invariant under an evolving incumbent.

use lazymc_graph::{gen, CsrGraph};
use lazymc_lazygraph::LazyGraph;
use lazymc_order::{coreness_degree_order, kcore_sequential};
use proptest::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

fn arb_graph() -> impl Strategy<Value = CsrGraph> {
    (5usize..80, 0.02f64..0.3, 0u64..500).prop_map(|(n, p, seed)| gen::gnp(n, p, seed))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The sorted representation must equal the relabelled original
    /// neighbourhood restricted to coreness >= incumbent-at-construction.
    #[test]
    fn filtered_contents_exact(g in arb_graph(), incumbent in 0usize..6) {
        let kc = kcore_sequential(&g);
        let ord = coreness_degree_order(&g, &kc.coreness);
        let inc = Arc::new(AtomicUsize::new(incumbent));
        let lg = LazyGraph::new(&g, &ord, &kc.coreness, inc);
        for v in 0..g.num_vertices() as u32 {
            let mut want: Vec<u32> = g
                .neighbors(ord.to_original(v))
                .iter()
                .map(|&uo| ord.to_relabelled(uo))
                .filter(|&u| lg.coreness(u) >= incumbent as u32)
                .collect();
            want.sort_unstable();
            prop_assert_eq!(lg.sorted(v), &want[..]);
            prop_assert_eq!(lg.hashed(v).to_sorted_vec(), want);
        }
    }

    /// Growing the incumbent between the two constructions may only strand
    /// already-ruled-out vertices in the older representation.
    #[test]
    fn divergence_invariant(g in arb_graph(), first in 0usize..4, growth in 0usize..6) {
        let kc = kcore_sequential(&g);
        let ord = coreness_degree_order(&g, &kc.coreness);
        let inc = Arc::new(AtomicUsize::new(first));
        let lg = LazyGraph::new(&g, &ord, &kc.coreness, inc.clone());
        let n = g.num_vertices() as u32;
        for v in (0..n).step_by(2) {
            lg.hashed(v);
        }
        inc.store(first + growth, Ordering::Relaxed);
        for v in 0..n {
            lg.sorted(v);
            lg.check_divergence_invariant(v).unwrap();
        }
    }

    /// Querying must never build more than once per representation,
    /// regardless of access pattern.
    #[test]
    fn memoization_counts(g in arb_graph(), accesses in proptest::collection::vec(0usize..40, 1..60)) {
        let kc = kcore_sequential(&g);
        let ord = coreness_degree_order(&g, &kc.coreness);
        let inc = Arc::new(AtomicUsize::new(0));
        let lg = LazyGraph::new(&g, &ord, &kc.coreness, inc);
        let n = g.num_vertices();
        let mut hash_touched = std::collections::BTreeSet::new();
        let mut sort_touched = std::collections::BTreeSet::new();
        for (i, a) in accesses.iter().enumerate() {
            let v = (a % n) as u32;
            if i % 2 == 0 {
                lg.hashed(v);
                hash_touched.insert(v);
            } else {
                lg.sorted(v);
                sort_touched.insert(v);
            }
        }
        prop_assert_eq!(lg.built_counts(), (hash_touched.len(), sort_touched.len()));
    }
}
