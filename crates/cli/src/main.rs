//! `lazymc` — command-line maximum clique solver.
//!
//! ```text
//! lazymc solve <file> [--threads N] [--budget SECS] [--phi F]
//!                     [--no-early-exit] [--no-second-exit]
//!                     [--prepopulate none|must|all] [--quiet]
//! lazymc stats <file>
//! lazymc mce <file> [--histogram]
//! lazymc compare <file> [--skip ALG[,ALG…]]
//! lazymc gen <instance> <out-file> [--test]
//! lazymc fetch [<name>…] [--dir DIR] [--list]
//! lazymc serve [<addr>] [--workers N] [--max-graphs M] [--queue-cap Q]
//!              [--data-dir DIR] [--mmap-threshold-bytes B]
//! lazymc snapshot <graph-file> <out.lmcs>
//! lazymc restore <file.lmcs> [<out-graph-file>]
//! lazymc help
//! ```
//!
//! Input files may be whitespace edge lists, DIMACS `.clq`/`.col`, or
//! MatrixMarket `.mtx` (chosen by extension).

#![deny(clippy::unwrap_used)]

mod args;
mod commands;

/// Route every allocation through the counting allocator so
/// `lazymc bench` can report per-case allocation stats (two relaxed
/// atomic adds per allocation — noise for every command here).
#[global_allocator]
static ALLOC: lazymc_bench::alloc::CountingAlloc = lazymc_bench::alloc::CountingAlloc;

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let code = run(&argv);
    std::process::exit(code);
}

fn run(argv: &[String]) -> i32 {
    match argv.first().map(String::as_str) {
        Some("solve") => commands::solve(&argv[1..]),
        Some("bench") => commands::bench(&argv[1..]),
        Some("stats") => commands::stats(&argv[1..]),
        Some("mce") => commands::mce(&argv[1..]),
        Some("compare") => commands::compare(&argv[1..]),
        Some("gen") => commands::gen(&argv[1..]),
        Some("fetch") => commands::fetch(&argv[1..]),
        Some("serve") => commands::serve(&argv[1..]),
        Some("snapshot") => commands::snapshot(&argv[1..]),
        Some("restore") => commands::restore(&argv[1..]),
        Some("help") | Some("--help") | Some("-h") | None => {
            print!("{}", commands::USAGE);
            0
        }
        Some(other) => {
            eprintln!("unknown command {other:?}\n\n{}", commands::USAGE);
            2
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn help_succeeds() {
        assert_eq!(run(&["help".into()]), 0);
        assert_eq!(run(&[]), 0);
    }

    #[test]
    fn unknown_command_fails() {
        assert_eq!(run(&["frobnicate".into()]), 2);
    }

    #[test]
    fn missing_file_fails_cleanly() {
        assert_ne!(run(&["solve".into(), "/nonexistent/graph.clq".into()]), 0);
        assert_ne!(run(&["stats".into(), "/nonexistent/graph.clq".into()]), 0);
    }

    #[test]
    fn end_to_end_gen_stats_solve_mce_compare() {
        let dir = std::env::temp_dir().join("lazymc_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("collab.clq");
        let path_s = path.to_str().unwrap().to_string();

        assert_eq!(
            run(&[
                "gen".into(),
                "collab".into(),
                path_s.clone(),
                "--test".into()
            ]),
            0
        );
        assert_eq!(run(&["stats".into(), path_s.clone()]), 0);
        assert_eq!(run(&["solve".into(), path_s.clone(), "--quiet".into()]), 0);
        assert_eq!(
            run(&[
                "solve".into(),
                path_s.clone(),
                "--threads".into(),
                "1".into(),
                "--phi".into(),
                "0.2".into(),
                "--no-second-exit".into(),
                "--prepopulate".into(),
                "none".into(),
            ]),
            0
        );
        assert_eq!(
            run(&["mce".into(), path_s.clone(), "--histogram".into()]),
            0
        );
        assert_eq!(
            run(&[
                "compare".into(),
                path_s.clone(),
                "--skip".into(),
                "domega-ls".into()
            ]),
            0
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn snapshot_restore_roundtrip() {
        let dir = std::env::temp_dir().join(format!("lazymc_cli_snap_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let graph = dir.join("g.clq");
        let snap = dir.join("g.lmcs");
        let back = dir.join("back.clq");
        let (graph_s, snap_s, back_s) = (
            graph.to_str().unwrap().to_string(),
            snap.to_str().unwrap().to_string(),
            back.to_str().unwrap().to_string(),
        );
        assert_eq!(
            run(&[
                "gen".into(),
                "collab".into(),
                graph_s.clone(),
                "--test".into()
            ]),
            0
        );
        assert_eq!(
            run(&["snapshot".into(), graph_s.clone(), snap_s.clone()]),
            0
        );
        assert_eq!(run(&["restore".into(), snap_s.clone(), back_s.clone()]), 0);
        // Re-exported graph has identical content (same fingerprint class).
        let original = lazymc_graph::io::read_path(&graph).unwrap();
        let restored = lazymc_graph::io::read_path(&back).unwrap();
        assert_eq!(original.fingerprint(), restored.fingerprint());
        // A corrupted snapshot is rejected loudly, not mis-restored.
        let mut bytes = std::fs::read(&snap).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&snap, &bytes).unwrap();
        assert_ne!(run(&["restore".into(), snap_s.clone()]), 0);
        // Missing args / missing files fail cleanly.
        assert_ne!(run(&["snapshot".into(), graph_s.clone()]), 0);
        assert_ne!(run(&["restore".into(), "/nonexistent.lmcs".into()]), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn serve_check_with_data_dir_creates_and_scans() {
        let dir = std::env::temp_dir().join(format!("lazymc_cli_dd_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        assert_eq!(
            run(&[
                "serve".into(),
                "127.0.0.1:0".into(),
                "--data-dir".into(),
                dir.to_str().unwrap().into(),
                "--check".into(),
            ]),
            0
        );
        assert!(dir.is_dir(), "--data-dir must be created at boot");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn serve_check_binds_and_exits() {
        assert_eq!(
            run(&["serve".into(), "127.0.0.1:0".into(), "--check".into()]),
            0
        );
    }

    #[test]
    fn serve_accepts_reactor_and_job_flags() {
        // Every valued serve flag must be registered in args::VALUED;
        // an unregistered one dies with "flag needs a value".
        assert_eq!(
            run(&[
                "serve".into(),
                "127.0.0.1:0".into(),
                "--io-threads".into(),
                "2".into(),
                "--conn-limit".into(),
                "64".into(),
                "--solver-workers".into(),
                "1".into(),
                "--job-ttl-ms".into(),
                "5000".into(),
                "--result-cache-bytes".into(),
                "65536".into(),
                "--mmap-threshold-bytes".into(),
                "0".into(),
                "--check".into(),
            ]),
            0
        );
    }

    #[test]
    fn serve_rejects_bad_inputs() {
        assert_ne!(
            run(&["serve".into(), "not-an-address".into(), "--check".into()]),
            0
        );
        assert_ne!(
            run(&[
                "serve".into(),
                "127.0.0.1:0".into(),
                "--workers".into(),
                "x".into()
            ]),
            0
        );
    }

    #[test]
    fn bench_rejects_bad_inputs() {
        assert_ne!(run(&["bench".into()]), 0);
        assert_ne!(run(&["bench".into(), "--suite".into(), "nope".into()]), 0);
        assert_ne!(
            run(&[
                "bench".into(),
                "--check-json".into(),
                "/nonexistent.json".into()
            ]),
            0
        );
    }

    #[test]
    fn bench_check_json_accepts_valid_rejects_invalid() {
        let dir = std::env::temp_dir().join(format!("lazymc_bench_chk_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let good = dir.join("good.json");
        std::fs::write(
            &good,
            r#"{"schema":"lazymc-bench/v1","suite":"quick","threads":1,"reps":1,
                "alloc_tracked":false,"cases":[{"name":"x","n":1,"m":0,"omega":1,
                "reps":1,"wall_ms_median":0.1,"wall_ms_min":0.1,"mc_nodes":0,
                "vc_nodes":0,"searched_mc":0,"searched_kvc":0,"reduced_vertices":0,
                "vc_reductions":0,"alloc_count":0,"alloc_bytes":0,"peak_bytes":0}],
                "total_wall_ms":0.1}"#,
        )
        .unwrap();
        assert_eq!(
            run(&[
                "bench".into(),
                "--check-json".into(),
                good.to_str().unwrap().into()
            ]),
            0
        );
        // Missing case fields / wrong schema tag must be rejected.
        let bad = dir.join("bad.json");
        std::fs::write(
            &bad,
            r#"{"schema":"lazymc-bench/v1","suite":"quick","threads":1,"reps":1,
                "alloc_tracked":false,"cases":[{"name":"x"}],"total_wall_ms":0.1}"#,
        )
        .unwrap();
        assert_ne!(
            run(&[
                "bench".into(),
                "--check-json".into(),
                bad.to_str().unwrap().into()
            ]),
            0
        );
        let wrong = dir.join("wrong.json");
        std::fs::write(&wrong, r#"{"schema":"other/v2"}"#).unwrap();
        assert_ne!(
            run(&[
                "bench".into(),
                "--check-json".into(),
                wrong.to_str().unwrap().into()
            ]),
            0
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bench_check_json_accepts_host_fields() {
        let dir = std::env::temp_dir().join(format!("lazymc_bench_host_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        // Host-stamped report: additive fields type-checked when present.
        let stamped = dir.join("stamped.json");
        std::fs::write(
            &stamped,
            r#"{"schema":"lazymc-bench/v1","suite":"sparse-massive","threads":1,"reps":1,
                "alloc_tracked":false,"host_cores":1,"host_mem_bytes":135160107008,
                "cases":[{"name":"x","n":1,"m":0,"omega":1,
                "reps":1,"wall_ms_median":0.1,"wall_ms_min":0.1,"mc_nodes":0,
                "vc_nodes":0,"searched_mc":0,"searched_kvc":0,"reduced_vertices":0,
                "vc_reductions":0,"alloc_count":0,"alloc_bytes":0,"peak_bytes":0}],
                "total_wall_ms":0.1}"#,
        )
        .unwrap();
        assert_eq!(
            run(&[
                "bench".into(),
                "--check-json".into(),
                stamped.to_str().unwrap().into()
            ]),
            0
        );
        // Wrongly-typed host facts are rejected, not ignored.
        let bad = dir.join("bad_host.json");
        std::fs::write(
            &bad,
            r#"{"schema":"lazymc-bench/v1","suite":"quick","threads":1,"reps":1,
                "alloc_tracked":false,"host_cores":"one",
                "cases":[{"name":"x","n":1,"m":0,"omega":1,
                "reps":1,"wall_ms_median":0.1,"wall_ms_min":0.1,"mc_nodes":0,
                "vc_nodes":0,"searched_mc":0,"searched_kvc":0,"reduced_vertices":0,
                "vc_reductions":0,"alloc_count":0,"alloc_bytes":0,"peak_bytes":0}],
                "total_wall_ms":0.1}"#,
        )
        .unwrap();
        assert_ne!(
            run(&[
                "bench".into(),
                "--check-json".into(),
                bad.to_str().unwrap().into()
            ]),
            0
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fetch_lists_and_rejects_unknown_corpus() {
        assert_eq!(run(&["fetch".into(), "--list".into()]), 0);
        assert_ne!(run(&["fetch".into(), "no-such-corpus".into()]), 0);
    }

    #[test]
    fn gen_rejects_unknown_instance() {
        assert_ne!(run(&["gen".into(), "nope".into(), "/tmp/x.clq".into()]), 0);
    }

    #[test]
    fn solve_rejects_bad_flag_values() {
        assert_ne!(
            run(&[
                "solve".into(),
                "x.clq".into(),
                "--threads".into(),
                "banana".into()
            ]),
            0
        );
    }
}
