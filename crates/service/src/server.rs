//! The daemon: accept loop, HTTP/1.1 parsing, routing, worker pools.
//!
//! Two pools share one [`ServiceState`]:
//!
//! * **HTTP workers** own connections (keep-alive) and do request parsing,
//!   routing, and cache lookups — everything cheap.
//! * **Solver workers** pop [`SolveJob`]s from the bounded priority queue
//!   and run the actual search, replying through a per-job channel.
//!
//! A solve request therefore costs: parse → registry lookup → result-cache
//! probe → (miss) enqueue with a [`Deadline`] that started ticking at
//! enqueue → solver pops, runs `solve_prepared` against the shared CSR +
//! coreness → reply. A full queue never blocks the HTTP worker: the client
//! gets `429` with `Retry-After` and decides for itself.
//!
//! Endpoints: `POST /graphs`, `POST /solve`, `GET /graphs`,
//! `GET /stats/<name>`, `DELETE /graphs/<name>`, `GET /healthz`,
//! `GET /metrics` (Prometheus text format).

use crate::protocol::{Json, LoadRequest, SolveRequest};
use crate::queue::JobQueue;
use crate::registry::{CachedSolve, GraphEntry, Registry, ResultCache};
use lazymc_core::{Deadline, LazyMc, MetricsSnapshot};
use lazymc_graph::{io as graph_io, suite, CsrGraph};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

/// Tunables of one daemon instance.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Listen address, e.g. `127.0.0.1:7171` (port 0 picks a free port).
    pub addr: String,
    /// Size of the HTTP worker pool (connection handlers). 0 means the
    /// machine's available parallelism, capped at 8.
    pub workers: usize,
    /// Size of the solver pool. 0 means "same as `workers`". Fewer solver
    /// threads than HTTP workers turns the job queue into a real
    /// backpressure point (useful under heavy load and in tests).
    pub solver_workers: usize,
    /// Resident-graph capacity of the registry (LRU beyond that).
    pub max_graphs: usize,
    /// Pending-job capacity; beyond it, `POST /solve` gets 429.
    pub queue_capacity: usize,
    /// Result-cache capacity in entries.
    pub result_cache_capacity: usize,
    /// Largest accepted request body.
    pub max_body_bytes: usize,
    /// Keep-alive read timeout per connection.
    pub read_timeout: Duration,
    /// Directory for durable graph snapshots (`.lmcs`). `None` keeps the
    /// registry memory-only (uploads die with the process).
    pub data_dir: Option<String>,
    /// Server-side budget cap, milliseconds. Requested budgets are clamped
    /// to it and *unbudgeted* requests default to it, so a single client
    /// can no longer pin every solver (and with it every HTTP worker) with
    /// open-ended solves — the ROADMAP's stopgap until the async rewrite.
    /// `None` preserves the old behaviour (no cap, no default).
    pub max_budget_ms: Option<u64>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            addr: "127.0.0.1:7171".into(),
            workers: 0,
            solver_workers: 0,
            max_graphs: 8,
            queue_capacity: 64,
            result_cache_capacity: 256,
            max_body_bytes: 64 << 20,
            read_timeout: Duration::from_secs(30),
            data_dir: None,
            max_budget_ms: None,
        }
    }
}

impl ServiceConfig {
    fn effective_workers(&self) -> usize {
        // HTTP handlers spend their life blocked on socket I/O, where
        // pools well past the CPU count are legitimate — an explicit
        // `--workers` is honored verbatim (the compute-oriented
        // Config::thread_cap clamp applies to *solver* threads only).
        if self.workers > 0 {
            self.workers
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(2)
                .clamp(2, 8)
        }
    }

    fn effective_solver_workers(&self) -> usize {
        if self.solver_workers > 0 {
            // Solver workers are compute threads: the system-wide clamp
            // (Config::thread_cap) applies, same as every other solver
            // thread request — the pool-size and per-job clamps used to
            // disagree.
            lazymc_core::Config::clamp_threads(self.solver_workers).max(1)
        } else {
            self.effective_workers()
                .min(lazymc_core::Config::thread_cap())
        }
    }

    /// Largest intra-solve thread budget one job may use: with the whole
    /// solver pool busy, per-job threads multiply across workers, so each
    /// job gets an equal share of the system-wide cap.
    ///
    /// This is a deliberately *static* share (cap ÷ pool capacity, not ÷
    /// jobs actually in flight): a lone job on an idle daemon runs below
    /// the machine's full parallelism, in exchange for a worst-case
    /// thread count that is predictable and bounded regardless of load.
    /// Load-aware shares belong with the async rewrite (see ROADMAP).
    pub fn max_job_threads(&self) -> usize {
        (lazymc_core::Config::thread_cap() / self.effective_solver_workers().max(1)).max(1)
    }
}

/// One queued solve.
struct SolveJob {
    entry: Arc<GraphEntry>,
    config: lazymc_core::Config,
    /// Started ticking at enqueue: queue wait spends the budget too.
    deadline: Deadline,
    /// `Some(canonical_key)` when the result may be cached afterwards.
    cache_key: Option<String>,
    enqueued: Instant,
    reply: mpsc::Sender<SolveReply>,
}

struct SolveReply {
    omega: usize,
    clique: Vec<u32>,
    exact: bool,
    /// The solver panicked on this input; the fields above are meaningless.
    failed: bool,
    wait_ms: u64,
    solve_ms: u64,
}

/// Counters the daemon exports beyond the solver's own.
#[derive(Default)]
pub struct ServiceMetrics {
    pub solves_total: AtomicU64,
    pub solves_truncated_total: AtomicU64,
    pub solver_panics_total: AtomicU64,
    pub requests_total: AtomicU64,
    pub bad_requests_total: AtomicU64,
}

/// Everything the worker pools share.
pub struct ServiceState {
    pub registry: Registry,
    pub results: ResultCache,
    queue: JobQueue<SolveJob>,
    pub metrics: ServiceMetrics,
    core_totals: Mutex<MetricsSnapshot>,
    started: Instant,
    conns: ConnTracker,
}

impl ServiceState {
    fn new(cfg: &ServiceConfig) -> std::io::Result<ServiceState> {
        let store = match &cfg.data_dir {
            Some(dir) => Some(Arc::new(crate::persist::SnapshotStore::open(dir)?)),
            None => None,
        };
        Ok(ServiceState {
            registry: Registry::with_store(cfg.max_graphs, store),
            results: ResultCache::new(cfg.result_cache_capacity),
            queue: JobQueue::new(cfg.queue_capacity),
            metrics: ServiceMetrics::default(),
            core_totals: Mutex::new(MetricsSnapshot::default()),
            started: Instant::now(),
            conns: ConnTracker::default(),
        })
    }
}

/// Live-connection registry, so shutdown can sever keep-alive connections
/// that would otherwise pin HTTP workers until their read timeout.
#[derive(Default)]
struct ConnTracker {
    conns: Mutex<std::collections::HashMap<u64, TcpStream>>,
    next: AtomicU64,
}

impl ConnTracker {
    fn register(&self, stream: &TcpStream) -> u64 {
        let id = self.next.fetch_add(1, Ordering::Relaxed);
        if let Ok(clone) = stream.try_clone() {
            self.conns.lock().unwrap().insert(id, clone);
        }
        id
    }

    fn unregister(&self, id: u64) {
        self.conns.lock().unwrap().remove(&id);
    }

    fn shutdown_all(&self) {
        for stream in self.conns.lock().unwrap().values() {
            let _ = stream.shutdown(std::net::Shutdown::Both);
        }
    }
}

/// A running daemon. Dropping the handle leaves it running; call
/// [`ServiceHandle::stop`] for an orderly shutdown.
pub struct ServiceHandle {
    addr: SocketAddr,
    state: Arc<ServiceState>,
    shutdown: Arc<AtomicBool>,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl ServiceHandle {
    /// The bound address (resolves port 0 to the actual port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Shared state, exposed for tests and embedders.
    pub fn state(&self) -> &ServiceState {
        &self.state
    }

    /// Stops accepting, severs open connections, drains the queue, joins
    /// every worker.
    pub fn stop(mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.state.queue.close();
        self.state.conns.shutdown_all();
        // Unblock the acceptor with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

/// Binds `cfg.addr` and spawns the daemon's threads. Returns immediately.
pub fn serve(cfg: ServiceConfig) -> std::io::Result<ServiceHandle> {
    let listener = TcpListener::bind(&cfg.addr)?;
    let addr = listener.local_addr()?;
    let state = Arc::new(ServiceState::new(&cfg)?);
    let shutdown = Arc::new(AtomicBool::new(false));
    let workers = cfg.effective_workers();
    let solver_workers = cfg.effective_solver_workers();
    let mut threads = Vec::new();

    // Solver pool.
    for i in 0..solver_workers {
        let state = state.clone();
        threads.push(
            std::thread::Builder::new()
                .name(format!("lazymc-solver-{i}"))
                .spawn(move || solver_loop(&state))?,
        );
    }

    // Connection hand-off channel and HTTP pool.
    let (conn_tx, conn_rx) = mpsc::channel::<TcpStream>();
    let conn_rx = Arc::new(Mutex::new(conn_rx));
    for i in 0..workers {
        let state = state.clone();
        let conn_rx = conn_rx.clone();
        let cfg = cfg.clone();
        threads.push(
            std::thread::Builder::new()
                .name(format!("lazymc-http-{i}"))
                .spawn(move || loop {
                    let next = { conn_rx.lock().unwrap().recv() };
                    match next {
                        Ok(stream) => handle_connection(&state, &cfg, stream),
                        Err(_) => break,
                    }
                })?,
        );
    }

    // Acceptor.
    {
        let shutdown = shutdown.clone();
        threads.push(
            std::thread::Builder::new()
                .name("lazymc-accept".into())
                .spawn(move || {
                    for stream in listener.incoming() {
                        if shutdown.load(Ordering::SeqCst) {
                            break;
                        }
                        if let Ok(stream) = stream {
                            // Channel send only fails after shutdown.
                            if conn_tx.send(stream).is_err() {
                                break;
                            }
                        }
                    }
                })?,
        );
    }

    Ok(ServiceHandle {
        addr,
        state,
        shutdown,
        threads,
    })
}

fn solver_loop(state: &ServiceState) {
    while let Some((ticket, job)) = state.queue.pop() {
        let wait_ms = job.enqueued.elapsed().as_millis() as u64;
        if ticket.is_cancelled() {
            continue;
        }
        let t = Instant::now();
        // A panicking solve must not take the worker thread (and with it,
        // eventually, the whole solver pool) down: catch, count, report.
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            LazyMc::new(job.config.clone()).solve_prepared(
                &job.entry.graph,
                Some(&job.entry.kcore),
                &job.deadline,
            )
        }));
        let solve_ms = t.elapsed().as_millis() as u64;
        let result = match outcome {
            Ok(result) => result,
            Err(_) => {
                state
                    .metrics
                    .solver_panics_total
                    .fetch_add(1, Ordering::Relaxed);
                let _ = job.reply.send(SolveReply {
                    omega: 0,
                    clique: Vec::new(),
                    exact: false,
                    failed: true,
                    wait_ms,
                    solve_ms,
                });
                continue;
            }
        };

        state.metrics.solves_total.fetch_add(1, Ordering::Relaxed);
        if !result.is_exact() {
            state
                .metrics
                .solves_truncated_total
                .fetch_add(1, Ordering::Relaxed);
        }
        state
            .core_totals
            .lock()
            .unwrap()
            .accumulate(&result.metrics);

        let mut clique = result.vertices().to_vec();
        clique.sort_unstable();
        if result.is_exact() {
            if let Some(canonical) = &job.cache_key {
                state.results.put(
                    &job.entry.name,
                    job.entry.fingerprint,
                    canonical.clone(),
                    CachedSolve {
                        omega: clique.len(),
                        clique: clique.clone(),
                        solve_ms,
                    },
                );
            }
        }
        // The client may have hung up; a dead channel is not an error.
        let _ = job.reply.send(SolveReply {
            omega: clique.len(),
            clique,
            exact: result.is_exact(),
            failed: false,
            wait_ms,
            solve_ms,
        });
    }
}

// ---------------------------------------------------------------------------
// HTTP layer
// ---------------------------------------------------------------------------

struct Response {
    status: u16,
    content_type: &'static str,
    body: String,
    retry_after: Option<u64>,
}

impl Response {
    fn json(status: u16, value: Json) -> Response {
        Response {
            status,
            content_type: "application/json",
            body: value.encode(),
            retry_after: None,
        }
    }

    fn error(status: u16, message: impl Into<String>) -> Response {
        Response::json(
            status,
            Json::obj(vec![("error", Json::str(message.into()))]),
        )
    }
}

fn status_text(code: u16) -> &'static str {
    match code {
        200 => "OK",
        201 => "Created",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        501 => "Not Implemented",
        _ => "Internal Server Error",
    }
}

fn handle_connection(state: &ServiceState, cfg: &ServiceConfig, stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(cfg.read_timeout));
    let _ = stream.set_nodelay(true);
    let conn_id = state.conns.register(&stream);
    // Sever-on-drop so a panicking handler still unregisters.
    struct Unregister<'a>(&'a ConnTracker, u64);
    impl Drop for Unregister<'_> {
        fn drop(&mut self) {
            self.0.unregister(self.1);
        }
    }
    let _unregister = Unregister(&state.conns, conn_id);
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut stream = stream;
    loop {
        let (request, keep_alive) = match read_request(&mut reader, cfg.max_body_bytes) {
            Ok(Some(r)) => r,
            Ok(None) => return, // clean EOF between requests
            Err(status) => {
                state
                    .metrics
                    .bad_requests_total
                    .fetch_add(1, Ordering::Relaxed);
                let message = match status {
                    501 => "Transfer-Encoding is not supported; send a Content-Length body",
                    _ => "malformed request",
                };
                let resp = Response::error(status, message);
                let _ = write_response(&mut stream, &resp, false);
                return;
            }
        };
        state.metrics.requests_total.fetch_add(1, Ordering::Relaxed);
        let response = route(state, cfg, &request);
        if response.status >= 400 {
            state
                .metrics
                .bad_requests_total
                .fetch_add(1, Ordering::Relaxed);
        }
        if write_response(&mut stream, &response, keep_alive).is_err() || !keep_alive {
            return;
        }
    }
}

struct Request {
    method: String,
    path: String,
    body: String,
}

/// Longest accepted request line or header line. `max_body_bytes` guards
/// the body; without this, an endless no-newline byte stream would grow a
/// `read_line` buffer without bound.
const MAX_HEADER_LINE: usize = 16 * 1024;
/// Most header lines accepted per request.
const MAX_HEADERS: usize = 100;

/// Reads one `\n`-terminated line of at most `cap` bytes. `Ok(None)` on
/// EOF before any byte; `Err(status)` on an oversized line.
fn read_line_capped(reader: &mut BufReader<TcpStream>, cap: usize) -> Result<Option<String>, u16> {
    let mut line = String::new();
    match reader.by_ref().take(cap as u64 + 1).read_line(&mut line) {
        Ok(0) => return Ok(None),
        Ok(_) => {}
        Err(_) => return Ok(None), // timeout or reset
    }
    if line.len() > cap {
        return Err(400);
    }
    Ok(Some(line))
}

/// Reads one request. `Ok(None)` on EOF before a request line;
/// `Err(status)` on malformed/oversized input.
fn read_request(
    reader: &mut BufReader<TcpStream>,
    max_body: usize,
) -> Result<Option<(Request, bool)>, u16> {
    let line = match read_line_capped(reader, MAX_HEADER_LINE)? {
        Some(line) => line,
        None => return Ok(None),
    };
    let mut parts = line.split_whitespace();
    let (method, path, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v)) if v.starts_with("HTTP/1.") => {
            (m.to_string(), p.to_string(), v.to_string())
        }
        _ => return Err(400),
    };
    let mut content_length: Option<usize> = None;
    let mut keep_alive = version == "HTTP/1.1";
    for n_headers in 0.. {
        if n_headers >= MAX_HEADERS {
            return Err(400);
        }
        let header = match read_line_capped(reader, MAX_HEADER_LINE)? {
            Some(header) => header,
            None => return Err(400), // EOF mid-headers
        };
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            let value = value.trim();
            match name.to_ascii_lowercase().as_str() {
                "content-length" => {
                    // Request-smuggling hygiene: two Content-Length headers
                    // (even agreeing ones) mean some other party in the
                    // chain may frame this request differently — reject
                    // rather than pick one. A comma-joined list inside one
                    // header fails the integer parse below for the same
                    // reason.
                    if content_length.is_some() {
                        return Err(400);
                    }
                    content_length = Some(value.parse().map_err(|_| 400u16)?);
                }
                "transfer-encoding" => {
                    // We never decode chunked bodies. Answering 501 (and
                    // closing the connection) beats misreading the chunked
                    // stream as a fixed-length body.
                    return Err(501);
                }
                "connection" => {
                    keep_alive = !value.eq_ignore_ascii_case("close");
                }
                _ => {}
            }
        }
    }
    let content_length = content_length.unwrap_or(0);
    if content_length > max_body {
        return Err(413);
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).map_err(|_| 400u16)?;
    let body = String::from_utf8(body).map_err(|_| 400u16)?;
    Ok(Some((Request { method, path, body }, keep_alive)))
}

fn write_response(stream: &mut TcpStream, r: &Response, keep_alive: bool) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n",
        r.status,
        status_text(r.status),
        r.content_type,
        r.body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    if let Some(secs) = r.retry_after {
        head.push_str(&format!("Retry-After: {secs}\r\n"));
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(r.body.as_bytes())?;
    stream.flush()
}

fn route(state: &ServiceState, cfg: &ServiceConfig, req: &Request) -> Response {
    match (req.method.as_str(), req.path.as_str()) {
        ("POST", "/graphs") => load_graph(state, &req.body),
        ("POST", "/solve") => solve(state, cfg, &req.body),
        ("GET", "/graphs") => list_graphs(state),
        ("GET", "/healthz") => healthz(state, cfg),
        ("GET", "/metrics") => metrics(state),
        ("GET", path) => match path.strip_prefix("/stats/") {
            Some(name) => stats(state, cfg, name),
            None => Response::error(404, format!("no route {path}")),
        },
        ("DELETE", path) => match path.strip_prefix("/graphs/") {
            Some(name) if state.registry.remove(name) => {
                Response::json(200, Json::obj(vec![("removed", Json::str(name))]))
            }
            Some(name) => Response::error(404, format!("unknown graph {name:?}")),
            None => Response::error(404, format!("no route {path}")),
        },
        (method, path) => Response::error(405, format!("{method} {path} not supported")),
    }
}

fn fingerprint_hex(fp: u64) -> String {
    format!("{fp:016x}")
}

fn load_graph(state: &ServiceState, body: &str) -> Response {
    let parsed = match Json::parse(body).and_then(|v| LoadRequest::from_json(&v)) {
        Ok(r) => r,
        Err(e) => return Response::error(400, e),
    };
    let graph: CsrGraph = match parsed.format.as_str() {
        "edgelist" => match graph_io::read_edge_list(parsed.content.as_bytes()) {
            Ok(g) => g,
            Err(e) => return Response::error(400, format!("edge list: {e}")),
        },
        "dimacs" => match graph_io::read_dimacs(parsed.content.as_bytes()) {
            Ok(g) => g,
            Err(e) => return Response::error(400, format!("dimacs: {e}")),
        },
        "mtx" => match graph_io::read_matrix_market(parsed.content.as_bytes()) {
            Ok(g) => g,
            Err(e) => return Response::error(400, format!("matrix market: {e}")),
        },
        "suite" => {
            let Some(instance) = suite::by_name(parsed.content.trim()) else {
                return Response::error(
                    400,
                    format!("unknown suite instance {:?}", parsed.content),
                );
            };
            let scale = match parsed.scale.as_deref() {
                None | Some("test") => suite::Scale::Test,
                Some("standard") => suite::Scale::Standard,
                Some(other) => return Response::error(400, format!("unknown scale {other:?}")),
            };
            instance.build(scale)
        }
        _ => unreachable!("validated by LoadRequest::from_json"),
    };
    let entry = state.registry.insert(&parsed.name, graph);
    Response::json(
        201,
        Json::obj(vec![
            ("name", Json::str(&*entry.name)),
            ("fingerprint", Json::str(fingerprint_hex(entry.fingerprint))),
            ("vertices", Json::num(entry.graph.num_vertices() as f64)),
            ("edges", Json::num(entry.graph.num_edges() as f64)),
            ("degeneracy", Json::num(entry.kcore.degeneracy as f64)),
            (
                "omega_upper_bound",
                Json::num(entry.kcore.omega_upper_bound() as f64),
            ),
            ("prep_ms", Json::num(entry.prep_ms as f64)),
        ]),
    )
}

fn solve(state: &ServiceState, cfg: &ServiceConfig, body: &str) -> Response {
    let request = match Json::parse(body).and_then(|v| SolveRequest::from_json(&v)) {
        Ok(r) => r,
        Err(e) => return Response::error(400, e),
    };
    let Some(entry) = state.registry.get(&request.graph) else {
        return Response::error(404, format!("unknown graph {:?}", request.graph));
    };
    let mut config = request.config();
    // Route the per-job thread budget into the solver, clamped against
    // the worker pool: intra-solve threads multiply across concurrent
    // solver workers, so each job gets an equal share of the system-wide
    // cap. Unspecified (0 = "ambient pool") must not bypass the clamp —
    // ambient is the whole machine, which a full solver pool would
    // multiply — so defaulted jobs get the same per-job share.
    // (`threads` is excluded from the canonical cache key — the thread
    // count changes cost, never the answer.)
    config.threads = match config.threads {
        0 => cfg.max_job_threads(),
        t => t.min(cfg.max_job_threads()),
    };
    // Server-side budget cap: clamp requested budgets, default unbudgeted
    // requests. Applied *before* the canonical key is computed so the
    // result cache keys on the budget that actually ran.
    let mut budget_clamped = false;
    if let Some(cap_ms) = cfg.max_budget_ms {
        let cap = Duration::from_millis(cap_ms);
        match config.time_budget {
            Some(b) if b > cap => {
                config.time_budget = Some(cap);
                budget_clamped = true;
            }
            None => {
                config.time_budget = Some(cap);
                budget_clamped = true;
            }
            _ => {}
        }
    }
    let canonical = config.canonical_key();

    if !request.no_cache {
        if let Some(hit) = state
            .results
            .get(&entry.name, entry.fingerprint, &canonical)
        {
            return Response::json(
                200,
                Json::obj(vec![
                    ("graph", Json::str(&*entry.name)),
                    ("omega", Json::num(hit.omega as f64)),
                    (
                        "clique",
                        Json::Arr(hit.clique.iter().map(|&v| Json::num(v as f64)).collect()),
                    ),
                    ("exact", Json::Bool(true)),
                    ("truncated", Json::Bool(false)),
                    ("cached", Json::Bool(true)),
                    ("budget_clamped", Json::Bool(budget_clamped)),
                    ("solve_ms", Json::num(hit.solve_ms as f64)),
                ]),
            );
        }
    }

    let deadline = Deadline::starting_now(config.time_budget);
    let (reply_tx, reply_rx) = mpsc::channel();
    let job = SolveJob {
        entry: entry.clone(),
        config,
        deadline,
        cache_key: (!request.no_cache).then(|| canonical.clone()),
        enqueued: Instant::now(),
        reply: reply_tx,
    };
    let ticket = match state.queue.push(request.priority, job) {
        Ok(t) => t,
        Err(full) => {
            let mut r = Response::error(
                429,
                format!("{} pending jobs; try again shortly", full.capacity),
            );
            r.retry_after = Some(1);
            return r;
        }
    };
    match reply_rx.recv() {
        Ok(reply) if reply.failed => {
            Response::error(500, "solver panicked on this input; see /metrics")
        }
        Ok(reply) => Response::json(
            200,
            Json::obj(vec![
                ("graph", Json::str(&*entry.name)),
                ("job_id", Json::num(ticket.id as f64)),
                ("omega", Json::num(reply.omega as f64)),
                (
                    "clique",
                    Json::Arr(reply.clique.iter().map(|&v| Json::num(v as f64)).collect()),
                ),
                ("exact", Json::Bool(reply.exact)),
                ("truncated", Json::Bool(!reply.exact)),
                ("cached", Json::Bool(false)),
                ("budget_clamped", Json::Bool(budget_clamped)),
                ("wait_ms", Json::num(reply.wait_ms as f64)),
                ("solve_ms", Json::num(reply.solve_ms as f64)),
            ]),
        ),
        Err(_) => Response::error(500, "solver worker unavailable"),
    }
}

fn stats(state: &ServiceState, cfg: &ServiceConfig, name: &str) -> Response {
    let Some(entry) = state.registry.get(name) else {
        return Response::error(404, format!("unknown graph {name:?}"));
    };
    let g = &entry.graph;
    Response::json(
        200,
        Json::obj(vec![
            ("name", Json::str(&*entry.name)),
            ("fingerprint", Json::str(fingerprint_hex(entry.fingerprint))),
            ("vertices", Json::num(g.num_vertices() as f64)),
            ("edges", Json::num(g.num_edges() as f64)),
            ("max_degree", Json::num(g.max_degree() as f64)),
            ("density", Json::num(g.density())),
            ("degeneracy", Json::num(entry.kcore.degeneracy as f64)),
            (
                "omega_upper_bound",
                Json::num(entry.kcore.omega_upper_bound() as f64),
            ),
            ("queries", Json::num(entry.queries() as f64)),
            (
                "resident_ms",
                Json::num(entry.loaded_at.elapsed().as_millis() as f64),
            ),
            ("lazy_loaded", Json::Bool(entry.lazy_loaded)),
            (
                "max_budget_ms",
                match cfg.max_budget_ms {
                    Some(ms) => Json::num(ms as f64),
                    None => Json::Null,
                },
            ),
            (
                "snapshot_bytes",
                Json::num(
                    state
                        .registry
                        .store()
                        .and_then(|s| s.bytes_of(name))
                        .unwrap_or(0) as f64,
                ),
            ),
        ]),
    )
}

fn list_graphs(state: &ServiceState) -> Response {
    // One registry snapshot for both views, so a graph evicted or loaded
    // mid-request cannot show up in both lists (or neither).
    let resident_entries = state.registry.entries();
    let entries = resident_entries
        .iter()
        .map(|e| {
            Json::obj(vec![
                ("name", Json::str(&*e.name)),
                ("fingerprint", Json::str(fingerprint_hex(e.fingerprint))),
                ("vertices", Json::num(e.graph.num_vertices() as f64)),
                ("edges", Json::num(e.graph.num_edges() as f64)),
                ("queries", Json::num(e.queries() as f64)),
            ])
        })
        .collect();
    // Snapshots present on disk but not resident (post-restart, or LRU
    // victims): solvable on first touch, so the listing must name them.
    let resident: std::collections::HashSet<&str> =
        resident_entries.iter().map(|e| e.name.as_str()).collect();
    let mut on_disk: Vec<String> = state
        .registry
        .store()
        .map(|s| s.names())
        .unwrap_or_default()
        .into_iter()
        .filter(|n| !resident.contains(n.as_str()))
        .collect();
    on_disk.sort_unstable();
    Response::json(
        200,
        Json::obj(vec![
            ("graphs", Json::Arr(entries)),
            (
                "on_disk",
                Json::Arr(on_disk.into_iter().map(Json::str).collect()),
            ),
        ]),
    )
}

fn healthz(state: &ServiceState, cfg: &ServiceConfig) -> Response {
    Response::json(
        200,
        Json::obj(vec![
            ("status", Json::str("ok")),
            (
                "max_budget_ms",
                match cfg.max_budget_ms {
                    Some(ms) => Json::num(ms as f64),
                    None => Json::Null,
                },
            ),
            (
                "uptime_ms",
                Json::num(state.started.elapsed().as_millis() as f64),
            ),
            ("graphs", Json::num(state.registry.len() as f64)),
            ("queue_depth", Json::num(state.queue.depth() as f64)),
            ("durable", Json::Bool(state.registry.store().is_some())),
            (
                "snapshots",
                Json::num(state.registry.store().map_or(0, |s| s.len()) as f64),
            ),
            (
                "snapshot_disk_bytes",
                Json::num(state.registry.store().map_or(0, |s| s.total_bytes()) as f64),
            ),
        ]),
    )
}

fn metrics(state: &ServiceState) -> Response {
    let m = &state.metrics;
    let totals = state.core_totals.lock().unwrap().clone();
    let mut out = String::new();
    let mut counter = |name: &str, help: &str, value: u64| {
        out.push_str(&format!(
            "# HELP {name} {help}\n# TYPE {name} counter\n{name} {value}\n"
        ));
    };
    counter(
        "lazymc_requests_total",
        "HTTP requests handled",
        m.requests_total.load(Ordering::Relaxed),
    );
    counter(
        "lazymc_bad_requests_total",
        "Requests answered with a 4xx/5xx status",
        m.bad_requests_total.load(Ordering::Relaxed),
    );
    counter(
        "lazymc_solves_total",
        "Solve jobs executed (cache hits excluded)",
        m.solves_total.load(Ordering::Relaxed),
    );
    counter(
        "lazymc_solves_truncated_total",
        "Solves cut short by their budget",
        m.solves_truncated_total.load(Ordering::Relaxed),
    );
    counter(
        "lazymc_solver_panics_total",
        "Solve jobs that panicked in the solver",
        m.solver_panics_total.load(Ordering::Relaxed),
    );
    counter(
        "lazymc_result_cache_hits_total",
        "Solve requests answered from the result cache",
        state.results.hits.load(Ordering::Relaxed),
    );
    counter(
        "lazymc_result_cache_misses_total",
        "Solve requests that missed the result cache",
        state.results.misses.load(Ordering::Relaxed),
    );
    counter(
        "lazymc_graph_lookup_hits_total",
        "Registry lookups that found the graph",
        state.registry.hits.load(Ordering::Relaxed),
    );
    counter(
        "lazymc_graph_lookup_misses_total",
        "Registry lookups for unknown graphs",
        state.registry.misses.load(Ordering::Relaxed),
    );
    counter(
        "lazymc_graphs_evicted_total",
        "Graphs evicted by the registry LRU",
        state.registry.evictions.load(Ordering::Relaxed),
    );
    counter(
        "lazymc_jobs_rejected_total",
        "Solve jobs rejected with 429 (queue full)",
        state.queue.rejected.load(Ordering::Relaxed),
    );
    counter(
        "lazymc_jobs_cancelled_total",
        "Queued jobs reaped after cancellation",
        state.queue.cancelled.load(Ordering::Relaxed),
    );
    // Persistence: the restart-survival story in four counters. A reload
    // after reboot shows up as a lazy load with core_computes flat — the
    // observable proof that preprocessing was reused, not redone.
    counter(
        "lazymc_core_computes_total",
        "k-core decompositions computed in-process (uploads; lazy reloads deserialize instead)",
        state.registry.core_computes.load(Ordering::Relaxed),
    );
    let store = state.registry.store();
    counter(
        "lazymc_snapshot_lazy_loads_total",
        "Graphs reloaded from disk snapshots on first use",
        store.map_or(0, |s| s.lazy_loads.load(Ordering::Relaxed)),
    );
    counter(
        "lazymc_snapshot_writes_total",
        "Snapshots durably written (uploads and replacements)",
        store.map_or(0, |s| s.writes.load(Ordering::Relaxed)),
    );
    counter(
        "lazymc_snapshot_write_errors_total",
        "Snapshot writes that failed (graph resident but not durable)",
        store.map_or(0, |s| s.write_errors.load(Ordering::Relaxed)),
    );
    counter(
        "lazymc_snapshots_quarantined_total",
        "Snapshot files renamed aside after failing validation",
        store.map_or(0, |s| s.quarantined.load(Ordering::Relaxed)),
    );
    // Aggregated lazymc_core counters across all completed solves.
    counter(
        "lazymc_core_retained_coreness_total",
        "Neighbourhoods passing the coreness precondition",
        totals.retained_coreness,
    );
    counter(
        "lazymc_core_retained_f1_total",
        "Neighbourhoods surviving filter 1",
        totals.retained_f1,
    );
    counter(
        "lazymc_core_retained_f2_total",
        "Neighbourhoods surviving filter 2",
        totals.retained_f2,
    );
    counter(
        "lazymc_core_retained_f3_total",
        "Neighbourhoods surviving filter 3",
        totals.retained_f3,
    );
    counter(
        "lazymc_core_searched_mc_total",
        "Detailed searches dispatched to the MC solver",
        totals.searched_mc,
    );
    counter(
        "lazymc_core_searched_kvc_total",
        "Detailed searches dispatched to the k-VC solver",
        totals.searched_kvc,
    );
    counter(
        "lazymc_core_mc_nodes_total",
        "Branch-and-bound nodes expanded by the MC solver",
        totals.mc_nodes,
    );
    counter(
        "lazymc_core_vc_nodes_total",
        "Branch-and-bound nodes expanded by the k-VC solver",
        totals.vc_nodes,
    );
    counter(
        "lazymc_core_reduced_vertices_total",
        "Vertices removed by the subgraph reduction pass before detailed searches",
        totals.reduced_vertices,
    );
    counter(
        "lazymc_core_vc_reductions_total",
        "Vertices removed or forced by the k-VC kernelization rules",
        totals.vc_reductions,
    );
    counter(
        "lazymc_core_split_tasks_total",
        "Subtree tasks generated by intra-solve work splitting",
        totals.split_tasks,
    );
    counter(
        "lazymc_core_steals_total",
        "Split tasks executed by a worker other than their generator",
        totals.steals,
    );
    counter(
        "lazymc_core_incumbent_broadcasts_total",
        "Incumbent/early-stop broadcasts between parallel solve workers",
        totals.incumbent_broadcasts,
    );
    counter(
        "lazymc_core_filter_micros_total",
        "Thread-time spent filtering, microseconds",
        totals.filter_time.as_micros() as u64,
    );
    counter(
        "lazymc_core_mc_micros_total",
        "Thread-time in the MC subgraph solver, microseconds",
        totals.mc_time.as_micros() as u64,
    );
    counter(
        "lazymc_core_kvc_micros_total",
        "Thread-time in the k-VC subgraph solver, microseconds",
        totals.kvc_time.as_micros() as u64,
    );
    out.push_str(&format!(
        "# HELP lazymc_queue_depth Pending solve jobs\n# TYPE lazymc_queue_depth gauge\nlazymc_queue_depth {}\n",
        state.queue.depth()
    ));
    out.push_str(&format!(
        "# HELP lazymc_graphs_resident Graphs currently resident\n# TYPE lazymc_graphs_resident gauge\nlazymc_graphs_resident {}\n",
        state.registry.len()
    ));
    out.push_str(&format!(
        "# HELP lazymc_snapshots_on_disk Snapshot files indexed in the data dir\n# TYPE lazymc_snapshots_on_disk gauge\nlazymc_snapshots_on_disk {}\n",
        store.map_or(0, |s| s.len())
    ));
    out.push_str(&format!(
        "# HELP lazymc_snapshot_disk_bytes Total bytes of indexed snapshots\n# TYPE lazymc_snapshot_disk_bytes gauge\nlazymc_snapshot_disk_bytes {}\n",
        store.map_or(0, |s| s.total_bytes())
    ));
    Response {
        status: 200,
        content_type: "text/plain; version=0.0.4",
        body: out,
        retry_after: None,
    }
}
