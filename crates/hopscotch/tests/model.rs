//! Model-based property tests: `HopscotchSet` must behave exactly like
//! `std::collections::HashSet<u32>` under arbitrary insert/contains
//! sequences, and its structural invariants must hold at every point.

use lazymc_hopscotch::HopscotchSet;
use proptest::prelude::*;
use std::collections::HashSet;

proptest! {
    #[test]
    fn matches_std_hashset(keys in proptest::collection::vec(0u32..100_000, 0..800)) {
        let mut model = HashSet::new();
        let mut sut = HopscotchSet::new();
        for k in keys {
            prop_assert_eq!(sut.insert(k), model.insert(k));
            prop_assert!(sut.contains(k));
        }
        prop_assert_eq!(sut.len(), model.len());
        sut.check_invariants().unwrap();
        // membership agrees on members and a band of non-members
        for &k in &model {
            prop_assert!(sut.contains(k));
        }
        for k in 100_000u32..100_100 {
            prop_assert!(!sut.contains(k));
        }
        // iteration yields the model exactly
        let got = sut.to_sorted_vec();
        let mut want: Vec<u32> = model.into_iter().collect();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn narrow_key_range_forces_collisions(keys in proptest::collection::vec(0u32..64, 0..200)) {
        let mut model = HashSet::new();
        let mut sut = HopscotchSet::with_capacity(4);
        for k in keys {
            prop_assert_eq!(sut.insert(k), model.insert(k));
        }
        sut.check_invariants().unwrap();
        for k in 0..64u32 {
            prop_assert_eq!(sut.contains(k), model.contains(&k));
        }
    }

    #[test]
    fn pathological_stride_keys(stride in 1u32..1_000_000, count in 1usize..400) {
        // Strided keys stress the multiplicative hash's distribution.
        let mut sut = HopscotchSet::new();
        for i in 0..count as u32 {
            sut.insert(i.wrapping_mul(stride));
        }
        sut.check_invariants().unwrap();
        for i in 0..count as u32 {
            prop_assert!(sut.contains(i.wrapping_mul(stride)));
        }
    }
}
