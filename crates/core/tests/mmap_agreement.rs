//! Representation independence of the solve pipeline: a graph solved
//! through a zero-copy `MappedSnapshot` (CSR and coreness borrowed from
//! the file mapping) must be *bit-identical* to the same graph solved
//! from the heap — same ω, same witness, same node counts — at
//! `threads = 1`, where the search is deterministic. This is the
//! property that makes `--mmap-threshold-bytes` a pure performance knob.

use lazymc_core::{Config, Deadline, LazyMc};
use lazymc_graph::snapshot::{write_file_atomic, Snapshot};
use lazymc_graph::{gen, CsrGraph, MappedSnapshot};
use lazymc_order::{embed_kcore, kcore_sequential, KCoreView};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

fn arb_graph() -> impl Strategy<Value = CsrGraph> {
    prop_oneof![
        // Uniform G(n,p) across the density range.
        (2usize..90, 0.0f64..0.5, 0u64..10_000).prop_map(|(n, p, s)| gen::gnp(n, p, s)),
        // Power-law régime — the one the mmap path exists for.
        (3usize..120, 2usize..6, 0u64..10_000).prop_map(|(n, k, s)| gen::barabasi_albert(
            n.max(k + 1),
            k,
            s
        )),
        (10usize..60, 0.0f64..0.2, 4usize..9, 0u64..10_000)
            .prop_map(|(n, p, k, s)| gen::planted_clique(n.max(k), p, k.min(n), s)),
    ]
}

fn snap_to_tmp(g: &CsrGraph) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!("lazymc_agree_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    let path = dir.join(format!("{}.lmcs", SEQ.fetch_add(1, Ordering::Relaxed)));
    let kc = kcore_sequential(g);
    let mut snap = Snapshot::from_graph(g);
    embed_kcore(&mut snap, &kc);
    write_file_atomic(&path, &snap.encode()).expect("write snapshot");
    path
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn mapped_solve_is_bit_identical_to_heap(g in arb_graph(), phi in 0.0f64..=1.0) {
        let cfg = Config {
            threads: 1,
            density_threshold: phi,
            ..Config::default()
        };
        // Heap path: prepared solve with an owned decomposition, exactly
        // what the registry does for small graphs.
        let kc = kcore_sequential(&g);
        let heap = LazyMc::new(cfg.clone()).solve_prepared(
            &g,
            Some(kc.view()),
            &Deadline::starting_now(None),
        );
        // Mapped path: the same graph through the file mapping, coreness
        // borrowed from the snapshot rather than recomputed.
        let path = snap_to_tmp(&g);
        let m = MappedSnapshot::map(&path).expect("map");
        let view = KCoreView {
            coreness: m.coreness().expect("embedded coreness"),
            degeneracy: m.degeneracy(),
            peel_order: m.peel_order(),
        };
        let mapped = LazyMc::new(cfg).solve_prepared(
            &m,
            Some(view),
            &Deadline::starting_now(None),
        );
        prop_assert_eq!(heap.size(), mapped.size(), "omega diverged");
        prop_assert_eq!(heap.vertices(), mapped.vertices(), "witness diverged");
        prop_assert!(heap.is_exact() && mapped.is_exact());
        // Work-avoidance counters: identical search trees, not merely
        // identical answers.
        prop_assert_eq!(heap.metrics.mc_nodes, mapped.metrics.mc_nodes);
        prop_assert_eq!(heap.metrics.vc_nodes, mapped.metrics.vc_nodes);
        prop_assert_eq!(heap.metrics.searched_mc, mapped.metrics.searched_mc);
        prop_assert_eq!(heap.metrics.searched_kvc, mapped.metrics.searched_kvc);
        let _ = std::fs::remove_file(&path);
    }
}
