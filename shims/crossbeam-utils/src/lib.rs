//! Offline stand-in for the subset of `crossbeam-utils` this workspace
//! uses: [`CachePadded`], which aligns its contents to a cache-line
//! boundary so adjacent atomic counters do not false-share.

use std::ops::{Deref, DerefMut};

/// Pads and aligns a value to (at least) one cache line. 128 bytes covers
/// the adjacent-line prefetcher on modern x86 and the 128-byte lines of
/// recent AArch64 parts — the same constant crossbeam uses there.
#[derive(Default, Clone, Copy, PartialEq, Eq)]
#[repr(align(128))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    pub const fn new(value: T) -> Self {
        CachePadded { value }
    }

    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> Deref for CachePadded<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for CachePadded<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.value.fmt(f)
    }
}

impl<T> From<T> for CachePadded<T> {
    fn from(value: T) -> Self {
        CachePadded::new(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alignment_and_access() {
        let c = CachePadded::new(7u64);
        assert_eq!(*c, 7);
        assert_eq!(std::mem::align_of::<CachePadded<u64>>(), 128);
        let mut c = c;
        *c += 1;
        assert_eq!(c.into_inner(), 8);
    }
}
