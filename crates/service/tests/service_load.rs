//! Service-load smoke: 200 concurrent keep-alive connections probing
//! `/healthz` while the whole solver pool is pinned by long dense solves.
//! The reactor answers introspection inline, so health latency must stay
//! flat (p99 < 50 ms) — precisely the property the old thread-per-
//! connection daemon lacked (every HTTP worker could end up blocked in a
//! solve reply-wait).

mod common;

use common::{upload, Client};
use lazymc_graph::gen;
use lazymc_service::{serve, Json, ServiceConfig, ServiceHandle};
use std::time::{Duration, Instant};

fn start(cfg: ServiceConfig) -> ServiceHandle {
    serve(ServiceConfig {
        addr: "127.0.0.1:0".into(),
        ..cfg
    })
    .expect("bind service")
}

#[test]
fn healthz_stays_fast_with_200_connections_and_saturated_solvers() {
    const CONNS: usize = 200;
    const DRIVERS: usize = 8;
    const ROUNDS: usize = 3;

    let handle = start(ServiceConfig {
        solver_workers: 2,
        workers: 4,
        conn_limit: 512,
        queue_capacity: 64,
        ..ServiceConfig::default()
    });
    let addr = handle.addr();

    // A seconds-scale unbudgeted instance; a few of them pin both solver
    // workers for the whole measurement window.
    let g = gen::gnp(300, 0.5, 7);
    let mut setup = Client::connect(addr);
    upload(&mut setup, "busy", &g);

    // Saturate: 8 async jobs — 2 running, 6 queued behind them.
    let mut job_ids = Vec::new();
    for _ in 0..8 {
        let (status, _, body) = setup.request(
            "POST",
            "/solve?async=1",
            Some(r#"{"graph":"busy","no_cache":true}"#),
        );
        assert_eq!(status, 202, "saturation submit failed: {body}");
        let v = Json::parse(&body).unwrap();
        job_ids.push(v.get("job_id").and_then(Json::as_u64).unwrap());
    }
    // Confirm the pool is actually pinned before measuring.
    let t = Instant::now();
    loop {
        let (_, _, body) = setup.request("GET", "/healthz", None);
        let v = Json::parse(&body).unwrap();
        if v.get("jobs_inflight").and_then(Json::as_u64) == Some(2) {
            break;
        }
        assert!(
            t.elapsed() < Duration::from_secs(10),
            "solver pool never saturated: {body}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }

    // 200 keep-alive connections driven by a handful of threads (each
    // owns CONNS/DRIVERS sockets and round-robins requests over them, so
    // all 200 stay open simultaneously without 200 OS threads).
    let drivers: Vec<_> = (0..DRIVERS)
        .map(|_| {
            std::thread::spawn(move || {
                let mut conns: Vec<Client> = (0..CONNS / DRIVERS)
                    .map(|_| Client::connect(addr))
                    .collect();
                let mut latencies = Vec::with_capacity(conns.len() * ROUNDS);
                for _ in 0..ROUNDS {
                    for c in &mut conns {
                        let t = Instant::now();
                        let (status, _, body) = c.request("GET", "/healthz", None);
                        latencies.push(t.elapsed());
                        assert_eq!(status, 200, "healthz failed under load: {body}");
                    }
                }
                latencies
            })
        })
        .collect();
    let mut latencies: Vec<Duration> = Vec::new();
    for d in drivers {
        latencies.extend(d.join().expect("driver"));
    }
    assert_eq!(latencies.len(), (CONNS / DRIVERS) * DRIVERS * ROUNDS);

    latencies.sort_unstable();
    let p50 = latencies[latencies.len() / 2];
    let p99 = latencies[latencies.len() * 99 / 100];
    let max = *latencies.last().unwrap();
    eprintln!(
        "healthz under load: n={} p50={p50:?} p99={p99:?} max={max:?}",
        latencies.len()
    );
    // The acceptance bar: even with every solver pinned and 200 sockets
    // open, introspection answers in < 50 ms at p99.
    assert!(
        p99 < Duration::from_millis(50),
        "healthz p99 {p99:?} breaches the 50 ms bar (p50 {p50:?}, max {max:?})"
    );

    // While saturated, the solvers really were busy the whole time.
    let (_, _, body) = setup.request("GET", "/healthz", None);
    let v = Json::parse(&body).unwrap();
    assert_eq!(v.get("jobs_inflight").and_then(Json::as_u64), Some(2));

    // Cancel the backlog so shutdown does not serialize 8 long solves.
    for id in job_ids {
        let (status, _, _) = setup.request("DELETE", &format!("/jobs/{id}"), None);
        assert!(status == 200 || status == 409, "cancel {id} -> {status}");
    }
    handle.stop();
}
