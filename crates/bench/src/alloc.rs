//! A counting global allocator for the perf harness.
//!
//! Wraps [`std::alloc::System`] with relaxed atomic counters: allocation
//! count, cumulative allocated bytes, live bytes, and the high-water mark
//! of live bytes. Installed as the `#[global_allocator]` of the `lazymc`
//! binary so `lazymc bench` can report per-case allocation stats — the
//! observable proof (or refutation) of the "zero steady-state allocation"
//! claim the solver arenas make. Overhead is two relaxed `fetch_add`s per
//! allocation, noise for every workload here.
//!
//! The counters are process-wide. [`snapshot`] + [`AllocSnapshot::delta`]
//! bracket a region; [`tracking_enabled`] probes (with one throwaway
//! allocation) whether this process actually installed the allocator, so
//! harness output can say "untracked" instead of reporting zeros as fact.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static ALLOCATED: AtomicU64 = AtomicU64::new(0);
static FREED: AtomicU64 = AtomicU64::new(0);
static PEAK: AtomicU64 = AtomicU64::new(0);

/// The counting allocator. Install with:
/// `#[global_allocator] static A: CountingAlloc = CountingAlloc;`
pub struct CountingAlloc;

impl CountingAlloc {
    #[inline]
    fn record_alloc(size: usize) {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        let allocated = ALLOCATED.fetch_add(size as u64, Ordering::Relaxed) + size as u64;
        // Relaxed racing against concurrent frees can transiently overshoot;
        // saturate rather than wrap.
        let live = allocated.saturating_sub(FREED.load(Ordering::Relaxed));
        PEAK.fetch_max(live, Ordering::Relaxed);
    }

    #[inline]
    fn record_free(size: usize) {
        FREED.fetch_add(size as u64, Ordering::Relaxed);
    }
}

// SAFETY: delegates every operation to `System`; the bookkeeping touches
// only atomics (no allocation, no TLS), so it is reentrancy-safe.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            Self::record_alloc(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        Self::record_free(layout.size());
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            Self::record_free(layout.size());
            Self::record_alloc(new_size);
        }
        p
    }
}

/// A point-in-time reading of the counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AllocSnapshot {
    /// Allocation calls so far (allocs + non-trivial reallocs).
    pub allocs: u64,
    /// Cumulative bytes ever allocated.
    pub allocated_bytes: u64,
    /// High-water mark of live bytes.
    pub peak_bytes: u64,
}

/// Reads the current counters.
pub fn snapshot() -> AllocSnapshot {
    AllocSnapshot {
        allocs: ALLOCS.load(Ordering::Relaxed),
        allocated_bytes: ALLOCATED.load(Ordering::Relaxed),
        peak_bytes: PEAK.load(Ordering::Relaxed),
    }
}

impl AllocSnapshot {
    /// Counters accumulated since `earlier` (peak is the absolute mark).
    pub fn delta(&self, earlier: &AllocSnapshot) -> AllocSnapshot {
        AllocSnapshot {
            allocs: self.allocs - earlier.allocs,
            allocated_bytes: self.allocated_bytes - earlier.allocated_bytes,
            peak_bytes: self.peak_bytes,
        }
    }
}

/// Bytes currently live (allocated and not yet freed). This is the gauge
/// the daemon's memory watermarks compare against `--max-memory-bytes`;
/// it reads as zero in processes that never installed the allocator
/// (check [`tracking_enabled`] before trusting it).
pub fn live_bytes() -> u64 {
    ALLOCATED
        .load(Ordering::Relaxed)
        .saturating_sub(FREED.load(Ordering::Relaxed))
}

/// Resets the live-byte high-water mark to the *current* live bytes, so
/// the next [`snapshot`] window reports the peak reached within it rather
/// than the process-lifetime maximum. Racy against concurrent allocation
/// (relaxed), which is fine for bracketed single-threaded measurement.
pub fn reset_peak() {
    let live = ALLOCATED
        .load(Ordering::Relaxed)
        .saturating_sub(FREED.load(Ordering::Relaxed));
    PEAK.store(live, Ordering::Relaxed);
}

/// Whether this process routes allocations through [`CountingAlloc`]
/// (i.e. some binary crate installed it as the global allocator).
pub fn tracking_enabled() -> bool {
    let before = ALLOCS.load(Ordering::Relaxed);
    let probe = Box::new(0u64);
    std::hint::black_box(&probe);
    drop(probe);
    ALLOCS.load(Ordering::Relaxed) != before
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_delta_arithmetic() {
        let a = AllocSnapshot {
            allocs: 10,
            allocated_bytes: 100,
            peak_bytes: 60,
        };
        let b = AllocSnapshot {
            allocs: 14,
            allocated_bytes: 160,
            peak_bytes: 90,
        };
        let d = b.delta(&a);
        assert_eq!(d.allocs, 4);
        assert_eq!(d.allocated_bytes, 60);
        assert_eq!(d.peak_bytes, 90);
    }

    #[test]
    fn untracked_process_reports_disabled() {
        // The test binary does not install the allocator.
        assert!(!tracking_enabled());
        assert_eq!(snapshot().allocs, 0);
    }
}
