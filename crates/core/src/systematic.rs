//! Systematic search — paper Algorithms 7 and 8.
//!
//! The exhaustive phase: every vertex whose coreness can still beat the
//! incumbent gets its right-neighbourhood searched. The order is the crux
//! of the work-avoidance story:
//!
//! 1. a cheap *probe* pass touches one vertex per degeneracy level (helps
//!    gap-heavy graphs lift the incumbent early);
//! 2. the main sweep walks coreness levels from high to low — *must*
//!    vertices first, then *may* vertices — processing all vertices of a
//!    level in parallel; as the incumbent grows, whole levels vanish.
//!
//! Each right-neighbourhood passes three advance filters before any
//! detailed search (Alg. 8): a coreness filter, then two rounds of
//! induced-degree filtering via `intersect-size-gt-bool`/`-val`. Only a few
//! neighbourhoods in a thousand survive (paper Table III); survivors are
//! solved by direct MC or by k-VC on the complement, chosen by density.

use crate::config::Config;
use crate::incumbent::Incumbent;
use crate::metrics::Counters;
use lazymc_graph::VertexId;
use lazymc_hopscotch::HopscotchSet;
use lazymc_intersect::{intersect_size_gt_bool, intersect_size_gt_val, intersect_size_plain};
use lazymc_lazygraph::LazyGraph;
use lazymc_sched::{SchedHandle, TaskMeta};
use lazymc_solver::bitset::{BitMatrix, Bitset};
use lazymc_solver::scratch::{Pool, SolverScratch};
use lazymc_solver::{
    max_clique_dense_par_live, max_clique_dense_sched_live, max_clique_dense_scratch_live,
    max_clique_via_vc_par_live, max_clique_via_vc_sched_live, max_clique_via_vc_scratch_live,
    LiveNodes, McStats, VcStats,
};
use rayon::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

/// Per-worker reusable buffers for one neighbourhood search: the filter
/// candidate lists, the extracted (and compacted) submatrices, and both
/// subgraph-solver arenas. Checked out of [`NEIGHBOR_SCRATCH`] per call,
/// so the whole systematic sweep reaches zero steady-state allocation —
/// buffers warmed by early neighbourhoods serve every later one.
#[derive(Default)]
struct NeighborScratch {
    solver: SolverScratch,
    n1: Vec<VertexId>,
    next: Vec<VertexId>,
    adj: BitMatrix,
    small: BitMatrix,
    map: Vec<u32>,
    within: Bitset,
    orig: Vec<VertexId>,
}

impl NeighborScratch {
    fn heap_bytes(&self) -> usize {
        self.solver.heap_bytes()
            + (self.n1.capacity()
                + self.next.capacity()
                + self.map.capacity()
                + self.orig.capacity())
                * 4
            + self.adj.heap_bytes()
            + self.small.heap_bytes()
            + self.within.heap_bytes()
    }
}

/// Arenas grown past this by an outlier neighbourhood (a huge `nn` means
/// O(nn²/8)-byte matrices) are dropped on return instead of pinned in the
/// static pool for the process lifetime — long-lived daemons must not pay
/// one pathological graph's high-water mark forever.
const MAX_RETAINED_ARENA_BYTES: usize = 8 << 20;

static NEIGHBOR_SCRATCH: Pool<NeighborScratch> =
    Pool::with_retain(|s| s.heap_bytes() <= MAX_RETAINED_ARENA_BYTES);

/// Wall-clock budget shared across the systematic search. When it expires,
/// no *new* neighbourhood search starts; `truncated` records whether any
/// work was actually skipped (i.e. whether the result may be inexact).
pub struct Deadline {
    expires: Option<Instant>,
    truncated: AtomicBool,
    /// Externally requested abort (job cancellation over HTTP): behaves
    /// exactly like an expired budget — no new search starts, the result
    /// reports itself truncated — so the solver needs no second code path.
    cancelled: AtomicBool,
}

impl Deadline {
    /// A deadline from an optional budget, starting now.
    pub fn starting_now(budget: Option<std::time::Duration>) -> Self {
        Deadline {
            expires: budget.map(|b| Instant::now() + b),
            truncated: AtomicBool::new(false),
            cancelled: AtomicBool::new(false),
        }
    }

    /// Unlimited.
    pub fn none() -> Self {
        Self::starting_now(None)
    }

    /// Expires the deadline immediately, whatever its budget. Safe to call
    /// from any thread while a solve is running against it: the solve
    /// finishes its current neighbourhood search, then truncates.
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::Relaxed);
    }

    /// Whether [`Deadline::cancel`] was called.
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Relaxed)
    }

    #[inline]
    fn expired(&self) -> bool {
        if self.cancelled.load(Ordering::Relaxed) {
            return true;
        }
        match self.expires {
            Some(t) => Instant::now() >= t,
            None => false,
        }
    }

    /// Checks expiry and, if expired, records that work was skipped.
    #[inline]
    fn should_skip(&self) -> bool {
        if self.expired() {
            self.truncated.store(true, Ordering::Relaxed);
            true
        } else {
            false
        }
    }

    /// Whether any search was skipped because the budget ran out.
    pub fn truncated(&self) -> bool {
        self.truncated.load(Ordering::Relaxed)
    }

    /// The absolute expiry instant, if the deadline has a budget at all.
    /// The service queue orders jobs by this (deadline-earliest wins a
    /// priority tie), so the number the scheduler races against and the
    /// number admission sorts by are one and the same.
    pub fn expires_at(&self) -> Option<Instant> {
        self.expires
    }
}

/// Binding of one solve to the machine-wide scheduler: the pool handle,
/// the identity/urgency metadata every subtree task of the job carries
/// (so stolen subtrees keep their job's deadline and priority wherever
/// they run), and the job's nominal width — the helper count one scope
/// may recruit, from [`Config::sched_width`], not a reserved share:
/// actual parallelism is whatever the pool has spare at claim time.
#[derive(Clone)]
pub struct JobSched {
    /// Handle onto the machine-wide work-stealing pool.
    pub handle: SchedHandle,
    /// Identity + urgency stamped on every task this solve submits.
    pub meta: TaskMeta,
    /// Nominal intra-solve width (≥ 1); `1` never submits tasks at all.
    pub width: usize,
}

/// Shared context of one systematic sweep, handed to every neighbourhood
/// search: the configuration, the global incumbent, the counters, the
/// deadline — plus the *intra-solve* thread budget chosen per phase by
/// the work-splitting rule.
pub struct SearchCtx<'a> {
    pub cfg: &'a Config,
    pub inc: &'a Incumbent,
    pub counters: &'a Counters,
    pub deadline: &'a Deadline,
    /// Threads the detailed subgraph search of this call may use. `1`
    /// runs the deterministic sequential kernels (today's exact code
    /// path); above that, the dense MC and k-VC solvers split their top
    /// branch levels into subtree tasks sharing one incumbent.
    pub solver_threads: usize,
    /// When set, subtree tasks go to the machine-wide scheduler instead
    /// of a job-scoped thread team, and the sweep itself becomes a
    /// stealable scope on the same pool.
    pub sched: Option<&'a JobSched>,
}

/// Runs `f` over `items`, split into at most `workers` contiguous chunks
/// executed in parallel. The second argument handed to `f` is the
/// intra-solve thread budget: when a phase has fewer pending vertices
/// than workers, vertex-level parallelism cannot keep the crew busy, so
/// the spare threads are pushed *inside* each subgraph solve
/// (subtree-level splitting); otherwise solves stay sequential inside
/// and the vertices themselves fan out. This is the "split only when
/// fewer pending vertices than idle workers" rule.
fn sweep_parallel(
    items: Vec<VertexId>,
    workers: usize,
    sched: Option<&JobSched>,
    f: impl Fn(VertexId, usize) + Sync,
) {
    let pending = items.len();
    if pending == 0 {
        return;
    }
    let inner = if pending < workers {
        (workers / pending).max(1)
    } else {
        1
    };
    if workers <= 1 || pending == 1 {
        for v in items {
            f(v, inner);
        }
        return;
    }
    if let Some(js) = sched {
        // The level's vertices become claimable units of one scope on the
        // machine-wide pool: idle workers of *any* job steal them, and the
        // scope owner claims alongside, so a level never waits on pool
        // capacity — `threads = 1` capacity degenerates to the loop above.
        js.handle
            .scope(js.meta, workers - 1, pending, &|_sc, i| f(items[i], inner));
        return;
    }
    // `for_each` distributes the items itself (the vendored shim chunks
    // into at most `workers` contiguous runs; real rayon would add work
    // stealing on top). The inner budget is uniform across the phase, so
    // it rides along by value.
    items.into_par_iter().for_each(|v| f(v, inner));
}

/// Runs the systematic search (paper Algorithm 7).
pub fn systematic_search(
    lg: &LazyGraph<'_>,
    levels: &[(u32, u32)],
    degeneracy: u32,
    cfg: &Config,
    inc: &Incumbent,
    counters: &Counters,
    deadline: &Deadline,
) {
    systematic_search_on(lg, levels, degeneracy, cfg, inc, counters, deadline, None)
}

/// [`systematic_search`] bound to the machine-wide scheduler: both the
/// level sweeps and the intra-solve subtree splits run as stealable
/// tasks carrying the job's deadline and priority. `None` keeps the
/// job-scoped rayon path.
#[allow(clippy::too_many_arguments)]
pub fn systematic_search_on(
    lg: &LazyGraph<'_>,
    levels: &[(u32, u32)],
    degeneracy: u32,
    cfg: &Config,
    inc: &Incumbent,
    counters: &Counters,
    deadline: &Deadline,
    sched: Option<&JobSched>,
) {
    let deg = degeneracy as usize;
    // Capacity is a property of the pool the job runs on, queried here —
    // not a static per-job share.
    let workers = match sched {
        Some(js) => js.width.max(1),
        None => rayon::current_num_threads().max(1),
    };
    // Phase 1: one probe per degeneracy level, from the incumbent level up.
    // Probed vertices are remembered so the main sweep does not search the
    // same right-neighbourhood twice.
    let probed: Vec<AtomicBool> = if cfg.low_core_probes {
        (0..lg.num_vertices())
            .map(|_| AtomicBool::new(false))
            .collect()
    } else {
        Vec::new()
    };
    if cfg.low_core_probes {
        let floor = inc.size().min(deg);
        let probes: Vec<VertexId> = (floor..=deg)
            .filter_map(|k| {
                let (start, end) = levels[k];
                (start < end).then(|| {
                    probed[start as usize].store(true, Ordering::Relaxed);
                    start
                })
            })
            .collect();
        sweep_parallel(probes, workers, sched, |v, inner| {
            if !deadline.should_skip() {
                let ctx = SearchCtx {
                    cfg,
                    inc,
                    counters,
                    deadline,
                    solver_threads: inner,
                    sched,
                };
                neighbor_search(lg, v, &ctx);
            }
        });
    }
    // Phase 2: high-to-low level sweep, parallel within each level. The
    // incumbent only grows, so once a level falls below it we can stop.
    for k in (1..=deg).rev() {
        if k < inc.size() || deadline.should_skip() {
            break;
        }
        let (start, end) = levels[k];
        let vs: Vec<VertexId> = (start..end)
            .filter(|&v| probed.is_empty() || !probed[v as usize].load(Ordering::Relaxed))
            .collect();
        sweep_parallel(vs, workers, sched, |v, inner| {
            // Re-check against the *current* incumbent: it may have grown
            // since the level test.
            if (lg.coreness(v) as usize) >= inc.size() && !deadline.should_skip() {
                let ctx = SearchCtx {
                    cfg,
                    inc,
                    counters,
                    deadline,
                    solver_threads: inner,
                    sched,
                };
                neighbor_search(lg, v, &ctx);
            }
        });
    }
}

/// Searches the right-neighbourhood of relabelled vertex `v`
/// (paper Algorithm 8).
pub fn neighbor_search(lg: &LazyGraph<'_>, v: VertexId, ctx: &SearchCtx<'_>) {
    NEIGHBOR_SCRATCH.with(|scr| neighbor_search_scratch(lg, v, ctx, scr));
}

fn neighbor_search_scratch(
    lg: &LazyGraph<'_>,
    v: VertexId,
    ctx: &SearchCtx<'_>,
    scr: &mut NeighborScratch,
) {
    let SearchCtx {
        cfg,
        inc,
        counters,
        deadline,
        solver_threads,
        sched,
    } = *ctx;
    let t0 = Instant::now();
    let cstar = inc.size();
    counters.add(&counters.retained_coreness, 1);

    // --- Filter 1: coreness of the neighbors themselves ------------------
    scr.n1.clear();
    scr.n1.extend(
        lg.right_sorted(v)
            .iter()
            .copied()
            .filter(|&u| (lg.coreness(u) as usize) >= cstar),
    );
    if scr.n1.len() < cstar {
        counters.add(&counters.filter_ns, t0.elapsed().as_nanos() as u64);
        return;
    }
    counters.add(&counters.retained_f1, 1);

    // A clique of size cstar+1 through v needs every member to see strictly
    // more than cstar−2 *other* members inside N (u and v complete the
    // count). For cstar < 2 the threshold is negative, i.e. vacuous: the
    // degree filters keep everything.
    let theta = if cstar >= 2 { Some(cstar - 2) } else { None };

    // --- Induced-degree filter rounds (Alg. 8 filters 2 and 3) -----------
    // All rounds but the last use the boolean early-exit kernel; the final
    // round uses the counting kernel so the edge estimate m̂ comes out of
    // it. The candidate set is the probed (B) side; a hash table is built
    // only when it is large enough to out-cost binary search, and the
    // kernels always scan the smaller side as A. The survivor lists
    // ping-pong between two pooled buffers.
    let rounds = cfg.filter_rounds.max(1);
    let mut m_hat = 0u64;
    for round in 0..rounds {
        let last = round + 1 == rounds;
        {
            let NeighborScratch { n1: cand, next, .. } = scr;
            let set = CandSet::new(cand);
            next.clear();
            if !last {
                if let Some(theta) = theta {
                    for &u in cand.iter() {
                        if induced_degree_gt(lg, u, cand, &set, theta, cfg) {
                            next.push(u);
                        }
                    }
                } else {
                    next.extend_from_slice(cand);
                }
            } else {
                m_hat = 0;
                for &u in cand.iter() {
                    if let Some(d) = induced_degree_count(lg, u, cand, &set, theta, cfg) {
                        next.push(u);
                        m_hat += d as u64;
                    }
                }
            }
        }
        std::mem::swap(&mut scr.n1, &mut scr.next);
        if round == 0 && scr.n1.len() >= cstar {
            counters.add(&counters.retained_f2, 1);
        }
        if scr.n1.len() < cstar {
            counters.add(&counters.filter_ns, t0.elapsed().as_nanos() as u64);
            return;
        }
    }
    counters.add(&counters.retained_f3, 1);
    let n3 = &scr.n1;

    // --- Algorithmic choice by estimated density (Alg. 8 line 14) --------
    // m̂ was counted against the previous round's set ⊇ N3, so the ratio
    // can exceed 1; clamp so that φ = 1 reliably means "always direct MC".
    let nn = n3.len();
    let density = if nn > 1 {
        (m_hat as f64 / (nn as f64 * (nn - 1) as f64)).min(1.0)
    } else {
        0.0
    };

    // Cut out the induced subgraph G[N] as a bit matrix. From here on we
    // are in local index space 0..nn (positions within n3).
    extract_submatrix_into(lg, n3, &mut scr.adj);
    let adj = &scr.adj;

    // Optional extension (paper §V-A): MC-BRB-style iterated reduction on
    // the extracted subgraph before the detailed search.
    scr.within.reset_full(nn);
    if cfg.subgraph_reduction {
        let removed =
            lazymc_solver::mc::reduce_candidates(adj, &mut scr.within, cstar.saturating_sub(1));
        counters.add(&counters.reduced_vertices, removed as u64);
        if scr.within.len() < cstar {
            counters.add(&counters.filter_ns, t0.elapsed().as_nanos() as u64);
            return;
        }
    }

    let filter_elapsed = t0.elapsed().as_nanos() as u64;
    counters.add(&counters.filter_ns, filter_elapsed);
    if deadline.should_skip() {
        return;
    }

    // A clique K ⊆ N together with v gives |K|+1, so beat the incumbent iff
    // |K| > cstar − 1.
    let lb = cstar.saturating_sub(1);
    // Intra-solve thread budget: 1 runs the deterministic sequential
    // kernels; above that, the engines split their top branch levels into
    // subtree tasks against a shared incumbent.
    let threads = solver_threads.max(1);
    // Scheduler-run solves poll this once per claimed subtree task, so a
    // deadline trip or cancellation drains every stolen subtree of the
    // job wherever it is executing.
    let stop = || deadline.should_skip();
    let stop: Option<lazymc_solver::StopFn<'_>> = Some(&stop);
    let t1 = Instant::now();
    let clique = &mut scr.solver.clique;
    let found = if density > cfg.density_threshold {
        counters.add(&counters.searched_kvc, 1);
        let mut st = VcStats::default();
        // Live observers see vc_nodes move mid-search; the kernel records
        // flushed batches in `st.sampled` so the residual add below keeps
        // the final total exact.
        let live = LiveNodes::new(&counters.vc_nodes);
        // The k-VC engine works on whole matrices; compact when the
        // reduction removed vertices.
        let r = if scr.within.len() < nn {
            compact_matrix_into(adj, &scr.within, &mut scr.small, &mut scr.map);
            let found = match sched {
                Some(js) if threads > 1 => max_clique_via_vc_sched_live(
                    &scr.small,
                    lb,
                    &js.handle,
                    js.meta,
                    threads,
                    stop,
                    Some(&mut st),
                    &mut scr.solver.vc,
                    clique,
                    live,
                ),
                _ if threads > 1 => max_clique_via_vc_par_live(
                    &scr.small,
                    lb,
                    threads,
                    Some(&mut st),
                    &mut scr.solver.vc,
                    clique,
                    live,
                ),
                _ => max_clique_via_vc_scratch_live(
                    &scr.small,
                    lb,
                    Some(&mut st),
                    &mut scr.solver.vc,
                    clique,
                    live,
                ),
            };
            if found {
                // translate compacted indices back to positions in n3
                for i in clique.iter_mut() {
                    *i = scr.map[*i as usize];
                }
            }
            found
        } else {
            match sched {
                Some(js) if threads > 1 => max_clique_via_vc_sched_live(
                    adj,
                    lb,
                    &js.handle,
                    js.meta,
                    threads,
                    stop,
                    Some(&mut st),
                    &mut scr.solver.vc,
                    clique,
                    live,
                ),
                _ if threads > 1 => max_clique_via_vc_par_live(
                    adj,
                    lb,
                    threads,
                    Some(&mut st),
                    &mut scr.solver.vc,
                    clique,
                    live,
                ),
                _ => max_clique_via_vc_scratch_live(
                    adj,
                    lb,
                    Some(&mut st),
                    &mut scr.solver.vc,
                    clique,
                    live,
                ),
            }
        };
        counters.add(&counters.vc_nodes, st.nodes - st.sampled);
        counters.add(&counters.vc_reductions, st.reductions);
        counters.add(&counters.split_tasks, st.split_tasks);
        counters.add(&counters.steals, st.steals);
        counters.add(&counters.incumbent_broadcasts, st.incumbent_broadcasts);
        counters.add(&counters.kvc_ns, t1.elapsed().as_nanos() as u64);
        r
    } else {
        counters.add(&counters.searched_mc, 1);
        let mut st = McStats::default();
        let live = LiveNodes::new(&counters.mc_nodes);
        let r = match sched {
            Some(js) if threads > 1 => max_clique_dense_sched_live(
                adj,
                &scr.within,
                lb,
                &js.handle,
                js.meta,
                threads,
                stop,
                Some(&mut st),
                clique,
                live,
            ),
            _ if threads > 1 => max_clique_dense_par_live(
                adj,
                &scr.within,
                lb,
                threads,
                Some(&mut st),
                clique,
                live,
            ),
            _ => max_clique_dense_scratch_live(
                adj,
                &scr.within,
                lb,
                Some(&mut st),
                &mut scr.solver.mc,
                clique,
                live,
            ),
        };
        counters.add(&counters.mc_nodes, st.nodes - st.sampled);
        counters.add(&counters.split_tasks, st.split_tasks);
        counters.add(&counters.steals, st.steals);
        counters.add(&counters.incumbent_broadcasts, st.incumbent_broadcasts);
        counters.add(&counters.mc_ns, t1.elapsed().as_nanos() as u64);
        r
    };

    if found {
        let order = lg.order();
        scr.orig.clear();
        scr.orig
            .extend(clique.iter().map(|&i| order.to_original(n3[i as usize])));
        scr.orig.push(order.to_original(v));
        debug_assert!(lg.original_graph().is_clique(&scr.orig));
        inc.offer(&scr.orig);
    }
}

/// Compacts `adj` to the vertices of `within`, writing the smaller matrix
/// into `small` and the local→original index map into `map` (both reused).
fn compact_matrix_into(
    adj: &BitMatrix,
    within: &Bitset,
    small: &mut BitMatrix,
    map: &mut Vec<u32>,
) {
    map.clear();
    map.extend(within.iter().map(|i| i as u32));
    small.reset(map.len());
    for (i, &oi) in map.iter().enumerate() {
        for (j, &oj) in map.iter().enumerate().skip(i + 1) {
            if adj.has_edge(oi as usize, oj as usize) {
                small.add_edge(i, j);
            }
        }
    }
}

/// Candidate-set membership: a real hash table when the set is large, the
/// sorted slice itself below that (hash construction would dominate the
/// handful of probes it serves).
enum CandSet<'a> {
    Small(&'a [VertexId]),
    Large(HopscotchSet),
}

/// Above this size, probing pays for building a hopscotch table.
const HASH_CUTOFF: usize = 64;

impl<'a> CandSet<'a> {
    fn new(sorted: &'a [VertexId]) -> Self {
        if sorted.len() > HASH_CUTOFF {
            CandSet::Large(sorted.iter().collect())
        } else {
            CandSet::Small(sorted)
        }
    }
}

impl lazymc_intersect::Membership for CandSet<'_> {
    #[inline]
    fn contains_key(&self, key: u32) -> bool {
        match self {
            CandSet::Small(s) => s.binary_search(&key).is_ok(),
            CandSet::Large(h) => h.contains(key),
        }
    }
    #[inline]
    fn size(&self) -> usize {
        match self {
            CandSet::Small(s) => s.len(),
            CandSet::Large(h) => h.len(),
        }
    }
}

/// Decides `|N(u) ∩ cand| > theta`, scanning whichever side is smaller.
#[inline]
fn induced_degree_gt(
    lg: &LazyGraph<'_>,
    u: VertexId,
    cand: &[VertexId],
    cand_set: &CandSet<'_>,
    theta: usize,
    cfg: &Config,
) -> bool {
    let nu = lg.sorted(u);
    if nu.len() <= cand.len() {
        // scan u's (smaller) neighbourhood against the candidate set
        if cfg.early_exit {
            intersect_size_gt_bool(nu, cand_set, theta, cfg.second_exit)
        } else {
            intersect_size_plain(nu, cand_set) > theta
        }
    } else {
        // scan the (smaller) candidate set against u's sorted neighbourhood
        let b = lazymc_intersect::SortedSlice(nu);
        if cfg.early_exit {
            intersect_size_gt_bool(cand, &b, theta, cfg.second_exit)
        } else {
            intersect_size_plain(cand, &b) > theta
        }
    }
}

/// Computes `|N(u) ∩ cand|` if it exceeds `theta` (always, when `theta` is
/// `None`), scanning whichever side is smaller.
#[inline]
fn induced_degree_count(
    lg: &LazyGraph<'_>,
    u: VertexId,
    cand: &[VertexId],
    cand_set: &CandSet<'_>,
    theta: Option<usize>,
    cfg: &Config,
) -> Option<usize> {
    let nu = lg.sorted(u);
    if nu.len() <= cand.len() {
        match (theta, cfg.early_exit) {
            (Some(t), true) => intersect_size_gt_val(nu, cand_set, t).filter(|&d| d > t),
            (Some(t), false) => {
                let d = intersect_size_plain(nu, cand_set);
                (d > t).then_some(d)
            }
            (None, _) => Some(intersect_size_plain(nu, cand_set)),
        }
    } else {
        let b = lazymc_intersect::SortedSlice(nu);
        match (theta, cfg.early_exit) {
            (Some(t), true) => intersect_size_gt_val(cand, &b, t).filter(|&d| d > t),
            (Some(t), false) => {
                let d = intersect_size_plain(cand, &b);
                (d > t).then_some(d)
            }
            (None, _) => Some(intersect_size_plain(cand, &b)),
        }
    }
}

/// Builds the dense adjacency of the subgraph induced by the sorted
/// relabelled vertex list `members`, in local (positional) index space,
/// into the reused `adj`. Each row is produced by merging the member list
/// with the member's lazy sorted neighbourhood.
pub(crate) fn extract_submatrix_into(
    lg: &LazyGraph<'_>,
    members: &[VertexId],
    adj: &mut BitMatrix,
) {
    debug_assert!(members.windows(2).all(|w| w[0] < w[1]));
    let nn = members.len();
    adj.reset(nn);
    for (i, &u) in members.iter().enumerate() {
        let nbrs = lg.sorted(u);
        if nbrs.len() > 8 * nn {
            // strongly skewed (hub neighbourhood): probe per member instead
            // of merging through the whole row
            for (a, &m) in members.iter().enumerate().skip(i + 1) {
                if nbrs.binary_search(&m).is_ok() {
                    adj.add_edge(i, a);
                }
            }
            continue;
        }
        // two-pointer merge over (members, nbrs), recording local positions
        let (mut a, mut b) = (0usize, 0usize);
        while a < nn && b < nbrs.len() {
            match members[a].cmp(&nbrs[b]) {
                std::cmp::Ordering::Less => a += 1,
                std::cmp::Ordering::Greater => b += 1,
                std::cmp::Ordering::Equal => {
                    if a > i {
                        adj.add_edge(i, a);
                    }
                    a += 1;
                    b += 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lazymc_graph::{gen, CsrGraph};
    use lazymc_order::{coreness_degree_order, kcore_sequential, relabel::level_ranges};

    struct Fixture<'a> {
        lg: LazyGraph<'a>,
        levels: Vec<(u32, u32)>,
        degeneracy: u32,
    }

    fn fixture<'a>(
        g: &'a CsrGraph,
        ord: &'a lazymc_order::VertexOrder,
        core: &'a [u32],
        degeneracy: u32,
        inc: &Incumbent,
    ) -> Fixture<'a> {
        let lg = LazyGraph::new(g, ord, core, inc.size_cell());
        let levels = level_ranges(ord, core, degeneracy);
        Fixture {
            lg,
            levels,
            degeneracy,
        }
    }

    fn solve_systematic(g: &CsrGraph) -> usize {
        let kc = kcore_sequential(g);
        let ord = coreness_degree_order(g, &kc.coreness);
        let inc = Incumbent::new();
        // prime with any single vertex so cstar ≥ 1
        if g.num_vertices() > 0 {
            inc.offer(&[0]);
        }
        let f = fixture(g, &ord, &kc.coreness, kc.degeneracy, &inc);
        let counters = Counters::default();
        systematic_search(
            &f.lg,
            &f.levels,
            f.degeneracy,
            &Config::default(),
            &inc,
            &counters,
            &Deadline::none(),
        );
        assert!(g.is_clique(&inc.clique()));
        inc.size()
    }

    #[test]
    fn finds_planted_clique() {
        let g = gen::planted_clique(200, 0.03, 12, 5);
        assert_eq!(solve_systematic(&g), 12);
    }

    #[test]
    fn complete_graph() {
        assert_eq!(solve_systematic(&gen::complete(15)), 15);
    }

    #[test]
    fn triangulated_grid_is_k4() {
        assert_eq!(solve_systematic(&gen::triangulated_grid(10, 8)), 4);
    }

    #[test]
    fn caveman_community() {
        assert_eq!(solve_systematic(&gen::caveman(10, 7, 0.05, 2)), 7);
    }

    #[test]
    fn path_graph_omega_two() {
        assert_eq!(solve_systematic(&gen::path(30)), 2);
    }

    #[test]
    fn filters_discharge_most_neighborhoods() {
        // On an easy gap-0 graph, after the heuristics the filters should
        // discharge nearly everything (Table III's 0-rows).
        let g = gen::caveman(20, 6, 0.0, 3);
        let kc = kcore_sequential(&g);
        let ord = coreness_degree_order(&g, &kc.coreness);
        let inc = Incumbent::new();
        // seed incumbent with a full community (size 6 = ω)
        inc.offer(&[0, 1, 2, 3, 4, 5]);
        let f = fixture(&g, &ord, &kc.coreness, kc.degeneracy, &inc);
        let counters = Counters::default();
        systematic_search(
            &f.lg,
            &f.levels,
            f.degeneracy,
            &Config::default(),
            &inc,
            &counters,
            &Deadline::none(),
        );
        let snap = crate::metrics::snapshot_counters(&counters);
        assert_eq!(inc.size(), 6, "ω must not regress");
        assert_eq!(
            snap.retained_f3, 0,
            "with ω incumbent, no neighbourhood should reach detailed search"
        );
    }

    #[test]
    fn density_threshold_routes_to_kvc() {
        // A dense instance with φ = 0 forces every detailed search to k-VC;
        // φ = 1 forces MC. Results must agree.
        let g = gen::dense_overlap(120, 15, 8, 14, 0.15, 9);
        let mut sizes = Vec::new();
        for phi in [0.0, 1.0] {
            let kc = kcore_sequential(&g);
            let ord = coreness_degree_order(&g, &kc.coreness);
            let inc = Incumbent::new();
            // Prime with an edge so cstar ≥ 2: every subgraph reaching a
            // detailed search then has m̂ ≥ |N| > 0, making the φ = 0 route
            // deterministic.
            let (u, v) = g.edges().next().unwrap();
            inc.offer(&[u, v]);
            let f = fixture(&g, &ord, &kc.coreness, kc.degeneracy, &inc);
            let counters = Counters::default();
            let cfg = Config::default().with_density_threshold(phi);
            systematic_search(
                &f.lg,
                &f.levels,
                f.degeneracy,
                &cfg,
                &inc,
                &counters,
                &Deadline::none(),
            );
            let snap = crate::metrics::snapshot_counters(&counters);
            if phi == 0.0 {
                assert_eq!(snap.searched_mc, 0, "phi=0 must route everything to k-VC");
            } else {
                assert_eq!(snap.searched_kvc, 0, "phi=1 must route everything to MC");
            }
            sizes.push(inc.size());
        }
        assert_eq!(sizes[0], sizes[1], "algorithmic choice must not change ω");
    }

    #[test]
    fn intra_solve_parallelism_splits_and_agrees() {
        // Dense G(n,p): filtered neighbourhoods are large enough to split.
        // Searching every right-neighbourhood with an intra-solve budget of
        // 4 threads must (a) reach ω — every clique has a least vertex in
        // the order, whose right-neighbourhood holds the rest — and
        // (b) actually exercise the work-splitting driver.
        let g = gen::gnp(100, 0.6, 42);
        let expected = crate::solve(&g).size();
        let kc = kcore_sequential(&g);
        let ord = coreness_degree_order(&g, &kc.coreness);
        let inc = Incumbent::new();
        let (u, v) = g.edges().next().unwrap();
        inc.offer(&[u, v]);
        let f = fixture(&g, &ord, &kc.coreness, kc.degeneracy, &inc);
        let counters = Counters::default();
        let cfg = Config::default();
        let deadline = Deadline::none();
        for v in 0..g.num_vertices() as u32 {
            let ctx = SearchCtx {
                cfg: &cfg,
                inc: &inc,
                counters: &counters,
                deadline: &deadline,
                solver_threads: 4,
                sched: None,
            };
            neighbor_search(&f.lg, v, &ctx);
        }
        assert_eq!(inc.size(), expected, "parallel search must not change ω");
        assert!(g.is_clique(&inc.clique()));
        let snap = crate::metrics::snapshot_counters(&counters);
        assert!(
            snap.split_tasks > 0,
            "dense neighbourhoods at 4 threads must generate subtree tasks"
        );
    }

    #[test]
    fn sched_driven_sweep_splits_and_agrees() {
        // The same dense instance, but with the sweep and the subtree
        // splits running as stealable tasks on a shared pool instead of a
        // job-scoped rayon team: ω must match, and the subtree drivers
        // must actually engage (split tasks recorded).
        let g = gen::gnp(100, 0.6, 42);
        let expected = crate::solve(&g).size();
        let pool = lazymc_sched::Pool::new(3);
        let js = JobSched {
            handle: pool.handle(),
            meta: lazymc_sched::TaskMeta::adhoc(),
            width: 4,
        };
        let kc = kcore_sequential(&g);
        let ord = coreness_degree_order(&g, &kc.coreness);
        let inc = Incumbent::new();
        let (u, v) = g.edges().next().unwrap();
        inc.offer(&[u, v]);
        let f = fixture(&g, &ord, &kc.coreness, kc.degeneracy, &inc);
        let counters = Counters::default();
        let cfg = Config::default();
        let deadline = Deadline::none();
        for v in 0..g.num_vertices() as u32 {
            let ctx = SearchCtx {
                cfg: &cfg,
                inc: &inc,
                counters: &counters,
                deadline: &deadline,
                solver_threads: 4,
                sched: Some(&js),
            };
            neighbor_search(&f.lg, v, &ctx);
        }
        assert_eq!(inc.size(), expected, "scheduler must not change ω");
        assert!(g.is_clique(&inc.clique()));
        let snap = crate::metrics::snapshot_counters(&counters);
        assert!(
            snap.split_tasks > 0,
            "dense neighbourhoods on the pool must generate subtree tasks"
        );
    }

    #[test]
    fn sched_full_sweep_matches_plain() {
        // systematic_search_on with a pool binding: whole levels fan out
        // as scope units; ω matches the rayon path.
        let g = gen::dense_overlap(120, 15, 8, 14, 0.15, 9);
        let expected = solve_systematic(&g);
        let pool = lazymc_sched::Pool::new(2);
        let js = JobSched {
            handle: pool.handle(),
            meta: lazymc_sched::TaskMeta::adhoc(),
            width: 3,
        };
        let kc = kcore_sequential(&g);
        let ord = coreness_degree_order(&g, &kc.coreness);
        let inc = Incumbent::new();
        inc.offer(&[0]);
        let f = fixture(&g, &ord, &kc.coreness, kc.degeneracy, &inc);
        let counters = Counters::default();
        systematic_search_on(
            &f.lg,
            &f.levels,
            f.degeneracy,
            &Config::default(),
            &inc,
            &counters,
            &Deadline::none(),
            Some(&js),
        );
        assert_eq!(inc.size(), expected);
        assert!(g.is_clique(&inc.clique()));
    }

    #[test]
    fn solver_threads_one_is_sequential_kernel() {
        // The same sweep at solver_threads = 1 must produce identical node
        // counts across runs (the deterministic sequential kernels).
        let g = gen::gnp(80, 0.55, 7);
        let kc = kcore_sequential(&g);
        let ord = coreness_degree_order(&g, &kc.coreness);
        let mut node_counts = Vec::new();
        for _ in 0..2 {
            let inc = Incumbent::new();
            let (u, v) = g.edges().next().unwrap();
            inc.offer(&[u, v]);
            let f = fixture(&g, &ord, &kc.coreness, kc.degeneracy, &inc);
            let counters = Counters::default();
            let cfg = Config::default();
            let deadline = Deadline::none();
            for v in 0..g.num_vertices() as u32 {
                let ctx = SearchCtx {
                    cfg: &cfg,
                    inc: &inc,
                    counters: &counters,
                    deadline: &deadline,
                    solver_threads: 1,
                    sched: None,
                };
                neighbor_search(&f.lg, v, &ctx);
            }
            let snap = crate::metrics::snapshot_counters(&counters);
            assert_eq!(snap.split_tasks, 0, "threads=1 must never split");
            assert_eq!(snap.steals, 0);
            node_counts.push((snap.mc_nodes, snap.vc_nodes));
        }
        assert_eq!(node_counts[0], node_counts[1]);
    }

    #[test]
    fn extract_submatrix_matches_graph() {
        let g = gen::gnp(60, 0.15, 7);
        let kc = kcore_sequential(&g);
        let ord = coreness_degree_order(&g, &kc.coreness);
        let inc = Incumbent::new();
        let lg = LazyGraph::new(&g, &ord, &kc.coreness, inc.size_cell());
        let members: Vec<u32> = (10..30).collect();
        let mut adj = BitMatrix::new(7); // wrong-size scratch gets reshaped
        extract_submatrix_into(&lg, &members, &mut adj);
        for i in 0..members.len() {
            for j in 0..members.len() {
                let oi = ord.to_original(members[i]);
                let oj = ord.to_original(members[j]);
                assert_eq!(
                    adj.has_edge(i, j),
                    i != j && g.has_edge(oi, oj),
                    "local ({i},{j})"
                );
            }
        }
    }
}
