//! Fig. 4 — laziness ablation.
//!
//! Slowdown (×) of pre-populating **all** neighbourhoods, or **none**,
//! relative to the default of pre-populating exactly the *must* subgraph.
//! The paper finds "all" catastrophic (up to 26×) and "none" a wash
//! (geomean 0.996).
//!
//! Run: `cargo run -p lazymc-bench --release --bin fig4 [--test]`

use lazymc_bench::cli::{ratio, CommonArgs};
use lazymc_bench::{time_stats, Table};
use lazymc_core::{Config, LazyMc, PrePopulate};

fn main() {
    let args = CommonArgs::parse();
    let mut table = Table::new(&["graph", "all", "none", "baseline[s]"]);
    let mut geo = [0f64, 0f64];
    let mut count = 0usize;
    for inst in args.instances() {
        let g = inst.build(args.scale);
        let run = |pp: PrePopulate| {
            let cfg = Config {
                prepopulate: pp,
                ..Config::default()
            };
            let (r, mean, _) = time_stats(args.reps, || LazyMc::new(cfg.clone()).solve(&g));
            (r.size(), mean.as_secs_f64())
        };
        let (omega, base) = run(PrePopulate::Must);
        let (o_all, t_all) = run(PrePopulate::All);
        let (o_none, t_none) = run(PrePopulate::None);
        assert_eq!(omega, o_all, "{}: ablation changed omega", inst.name);
        assert_eq!(omega, o_none, "{}: ablation changed omega", inst.name);
        let s_all = t_all / base.max(1e-9);
        let s_none = t_none / base.max(1e-9);
        geo[0] += s_all.ln();
        geo[1] += s_none.ln();
        count += 1;
        table.row(vec![
            inst.name.to_string(),
            ratio(s_all),
            ratio(s_none),
            format!("{base:.3}"),
        ]);
    }
    if count > 0 {
        table.row(vec![
            "geomean".into(),
            ratio((geo[0] / count as f64).exp()),
            ratio((geo[1] / count as f64).exp()),
            String::new(),
        ]);
    }
    println!(
        "Fig. 4: slowdown when pre-populating all / no neighbourhoods\n\
         (baseline = must subgraph only), {:?} scale",
        args.scale
    );
    println!("{}", table.render());
}
