//! The lazy filtered hashed relabelled graph (paper §IV-A, Algorithm 2).
//!
//! LazyMC spends most of its time in the *relabelled* graph, where vertex
//! ids follow the (coreness, degree) order. Building that representation
//! eagerly is wasteful twice over: most vertices are never searched, and
//! vertices searched *late* have many neighbors that the incumbent clique
//! has already ruled out. This structure therefore:
//!
//! * **relabels on demand** — neighbor ids are remapped from the original
//!   graph only when a neighbourhood is first queried, and memoized;
//! * **filters at construction** — neighbors whose coreness is below the
//!   incumbent size *at the time the neighbourhood is built* are dropped;
//! * **materializes per use-site** — a [`HopscotchSet`] when the set will
//!   answer membership probes (filters, subgraph cut-out), a sorted array
//!   when it will be scanned (top-level search), both independently;
//! * **shares across threads** with double-checked locking: an atomic
//!   state flag published with `Release`/`Acquire` (the lazy-initialization
//!   pattern of *Rust Atomics and Locks* ch. 2) plus a striped mutex pool
//!   for the slow path.
//!
//! The two representations of one vertex may be filtered against different
//! incumbent sizes. The paper proves this benign: any discrepancy concerns
//! only vertices that can no longer affect the search. The property test in
//! `tests/laziness.rs` checks exactly that invariant.
//!
//! ```
//! use std::sync::Arc;
//! use std::sync::atomic::AtomicUsize;
//! use lazymc_graph::gen;
//! use lazymc_lazygraph::LazyGraph;
//! use lazymc_order::{kcore_sequential, coreness_degree_order};
//!
//! let g = gen::gnp(100, 0.08, 3);
//! let kc = kcore_sequential(&g);
//! let order = coreness_degree_order(&g, &kc.coreness);
//! let incumbent = Arc::new(AtomicUsize::new(2)); // pretend |C*| = 2
//! let lg = LazyGraph::new(&g, &order, &kc.coreness, incumbent);
//!
//! assert_eq!(lg.built_counts(), (0, 0)); // nothing materialized yet
//! let n0 = lg.sorted(0); // built on first use, filtered by coreness >= 2
//! assert!(n0.iter().all(|&u| lg.coreness(u) >= 2));
//! assert_eq!(lg.built_counts(), (0, 1));
//! ```

use lazymc_graph::{GraphAccess, VertexId};
use lazymc_hopscotch::HopscotchSet;
use lazymc_order::VertexOrder;
use parking_lot::Mutex;
use rayon::prelude::*;
use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicU8, AtomicUsize, Ordering};
use std::sync::Arc;

/// How much of the graph to materialize ahead of the search
/// (the paper's Fig. 4 ablation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PrePopulate {
    /// Build nothing up front; everything is constructed on first use.
    None,
    /// Build the hashed neighbourhoods of the *must* subgraph — vertices
    /// whose coreness is at least the incumbent size found by the
    /// degree-based heuristic. The paper's default.
    #[default]
    Must,
    /// Build every vertex's hashed neighbourhood (the paper shows this is
    /// up to 26× slower end-to-end).
    All,
}

/// Either materialized representation of a neighbourhood.
pub enum NeighborRef<'a> {
    /// Hash-set representation.
    Hash(&'a HopscotchSet),
    /// Sorted-array representation.
    Sorted(&'a [VertexId]),
}

const ABSENT: u8 = 0;
const READY: u8 = 1;

/// Number of stripes in the construction lock pool.
const LOCK_STRIPES: usize = 1024;

/// Degree threshold for the "either representation" contexts: high-degree
/// vertices get a hash set, low-degree ones a sorted array (paper §IV-A).
pub const HASH_DEGREE_THRESHOLD: usize = 16;

struct Slot<T> {
    state: AtomicU8,
    value: UnsafeCell<Option<T>>,
}

impl<T> Slot<T> {
    fn new() -> Self {
        Slot {
            state: AtomicU8::new(ABSENT),
            value: UnsafeCell::new(None),
        }
    }

    /// Fast path: `Some` when the value is published.
    #[inline]
    fn get(&self) -> Option<&T> {
        if self.state.load(Ordering::Acquire) == READY {
            // SAFETY: READY is stored with Release *after* the value is
            // written, and the value is never mutated again.
            unsafe { (*self.value.get()).as_ref() }
        } else {
            None
        }
    }

    /// Publishes `value`; must be called while holding the stripe lock and
    /// only when the state is still ABSENT.
    #[inline]
    fn publish(&self, value: T) -> &T {
        // SAFETY: the stripe lock serializes writers; state is ABSENT so no
        // reader holds a reference yet.
        let r = unsafe {
            let cell = &mut *self.value.get();
            *cell = Some(value);
            cell.as_ref().unwrap()
        };
        self.state.store(READY, Ordering::Release);
        r
    }
}

/// The lazy filtered hashed relabelled graph. All vertex ids in its API are
/// *relabelled* ids; use [`LazyGraph::order`] to map back.
pub struct LazyGraph<'g> {
    g: &'g dyn GraphAccess,
    order: &'g VertexOrder,
    /// Coreness indexed by relabelled id (non-decreasing by construction).
    coreness: Vec<u32>,
    /// Live incumbent clique size; constructions filter against it.
    incumbent: Arc<AtomicUsize>,
    hash: Vec<Slot<HopscotchSet>>,
    sorted: Vec<Slot<Box<[VertexId]>>>,
    locks: Box<[Mutex<()>]>,
    hash_built: AtomicUsize,
    sorted_built: AtomicUsize,
}

// SAFETY: Slot values are written exactly once under a stripe mutex, then
// published via Release store and only read after an Acquire load; after
// publication they are immutable. All other fields are Sync.
unsafe impl Sync for LazyGraph<'_> {}
unsafe impl Send for LazyGraph<'_> {}

impl<'g> LazyGraph<'g> {
    /// Creates the lazy graph over `g`, relabelled by `order`, with
    /// `coreness` given in *original* ids, filtering against `incumbent`.
    pub fn new(
        g: &'g dyn GraphAccess,
        order: &'g VertexOrder,
        coreness_orig: &[u32],
        incumbent: Arc<AtomicUsize>,
    ) -> Self {
        let n = g.num_vertices();
        assert_eq!(order.len(), n);
        assert_eq!(coreness_orig.len(), n);
        let coreness: Vec<u32> = (0..n)
            .map(|rel| coreness_orig[order.to_original(rel as VertexId) as usize])
            .collect();
        LazyGraph {
            g,
            order,
            coreness,
            incumbent,
            hash: (0..n).map(|_| Slot::new()).collect(),
            sorted: (0..n).map(|_| Slot::new()).collect(),
            locks: (0..LOCK_STRIPES.min(n.max(1)))
                .map(|_| Mutex::new(()))
                .collect(),
            hash_built: AtomicUsize::new(0),
            sorted_built: AtomicUsize::new(0),
        }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.g.num_vertices()
    }

    /// The relabelling in force.
    pub fn order(&self) -> &VertexOrder {
        self.order
    }

    /// The underlying original-id graph.
    pub fn original_graph(&self) -> &dyn GraphAccess {
        self.g
    }

    /// Coreness of a relabelled vertex.
    #[inline]
    pub fn coreness(&self, v: VertexId) -> u32 {
        self.coreness[v as usize]
    }

    /// Coreness array (relabelled ids).
    pub fn coreness_slice(&self) -> &[u32] {
        &self.coreness
    }

    /// Degree of a relabelled vertex in the *original* (unfiltered) graph.
    #[inline]
    pub fn degree_unfiltered(&self, v: VertexId) -> usize {
        self.g.degree(self.order.to_original(v))
    }

    /// Current incumbent size used for filtering.
    pub fn incumbent_size(&self) -> usize {
        self.incumbent.load(Ordering::Relaxed)
    }

    /// Counts of materialized representations `(hashed, sorted)` —
    /// laziness diagnostics for the Fig. 4 experiment.
    pub fn built_counts(&self) -> (usize, usize) {
        (
            self.hash_built.load(Ordering::Relaxed),
            self.sorted_built.load(Ordering::Relaxed),
        )
    }

    #[inline]
    fn stripe(&self, v: VertexId) -> &Mutex<()> {
        &self.locks[v as usize % self.locks.len()]
    }

    /// Collects the filtered, relabelled neighbourhood of `v` (unsorted).
    /// This is `CreateHashedNeighborhood`'s loop body in Algorithm 2:
    /// remap each original neighbor and keep it only if its coreness is at
    /// least the incumbent size *now*.
    fn collect_filtered(&self, v: VertexId) -> Vec<VertexId> {
        let cstar = self.incumbent.load(Ordering::Relaxed) as u32;
        let vo = self.order.to_original(v);
        let nbrs = self.g.neighbors(vo);
        let mut out = Vec::with_capacity(nbrs.len());
        for &uo in nbrs {
            let u = self.order.to_relabelled(uo);
            if self.coreness[u as usize] >= cstar {
                out.push(u);
            }
        }
        out
    }

    /// `GetHashedNeighborhood` (Algorithm 2): the hash-set representation,
    /// built and memoized on first use.
    pub fn hashed(&self, v: VertexId) -> &HopscotchSet {
        if let Some(h) = self.hash[v as usize].get() {
            return h; // fast path: already published
        }
        let guard = self.stripe(v).lock();
        // Double-check under the lock: another thread may have built it
        // between our fast-path load and acquiring the stripe.
        if let Some(h) = self.hash[v as usize].get() {
            return h;
        }
        let nbrs = self.collect_filtered(v);
        let mut set = HopscotchSet::with_capacity(nbrs.len());
        for u in nbrs {
            set.insert(u);
        }
        self.hash_built.fetch_add(1, Ordering::Relaxed);
        let r = self.hash[v as usize].publish(set);
        drop(guard);
        r
    }

    /// The sorted-array representation, built and memoized on first use.
    pub fn sorted(&self, v: VertexId) -> &[VertexId] {
        if let Some(s) = self.sorted[v as usize].get() {
            return s;
        }
        let guard = self.stripe(v).lock();
        if let Some(s) = self.sorted[v as usize].get() {
            return s;
        }
        let mut nbrs = self.collect_filtered(v);
        nbrs.sort_unstable();
        self.sorted_built.fetch_add(1, Ordering::Relaxed);
        let r = self.sorted[v as usize].publish(nbrs.into_boxed_slice());
        drop(guard);
        r
    }

    /// The filtered right-neighbourhood `N+(v)` (relabelled ids > `v`),
    /// as a sub-slice of the sorted representation.
    pub fn right_sorted(&self, v: VertexId) -> &[VertexId] {
        let s = self.sorted(v);
        let split = s.partition_point(|&u| u <= v);
        &s[split..]
    }

    /// "Either representation" contexts (paper §IV-A): returns whatever is
    /// already materialized — preferring the hash set, which intersects
    /// faster — or builds one chosen by degree.
    pub fn any(&self, v: VertexId) -> NeighborRef<'_> {
        if let Some(h) = self.hash[v as usize].get() {
            return NeighborRef::Hash(h);
        }
        if let Some(s) = self.sorted[v as usize].get() {
            return NeighborRef::Sorted(s);
        }
        if self.degree_unfiltered(v) > HASH_DEGREE_THRESHOLD {
            NeighborRef::Hash(self.hashed(v))
        } else {
            NeighborRef::Sorted(self.sorted(v))
        }
    }

    /// Pre-populates neighbourhoods according to `policy`, in parallel.
    /// `must_threshold` is the incumbent size the *must* subgraph is
    /// measured against (the degree-heuristic result in Algorithm 1).
    ///
    /// The paper pre-populates the hashed representation; in this
    /// implementation the systematic search's filters consume the *sorted*
    /// representation (with the per-call candidate set as the hash side),
    /// so that is what gets pre-built — same policy, same ablation axis,
    /// representation matched to the consumer (see DESIGN.md §6).
    pub fn prepopulate(&self, policy: PrePopulate, must_threshold: usize) {
        let n = self.num_vertices() as u32;
        match policy {
            PrePopulate::None => {}
            PrePopulate::Must => {
                (0..n)
                    .into_par_iter()
                    .filter(|&v| self.coreness[v as usize] >= must_threshold as u32)
                    .for_each(|v| {
                        self.sorted(v);
                    });
            }
            PrePopulate::All => {
                (0..n).into_par_iter().for_each(|v| {
                    self.sorted(v);
                });
            }
        }
    }

    /// Test hook: checks the divergence invariant for `v` — every neighbor
    /// present in one representation but not the other must have coreness
    /// below the *larger* of the two construction-time incumbents, i.e. it
    /// must be ruled out already. Returns `Ok(())` when the invariant holds
    /// or a representation is missing.
    pub fn check_divergence_invariant(&self, v: VertexId) -> Result<(), String> {
        let (Some(h), Some(s)) = (self.hash[v as usize].get(), self.sorted[v as usize].get())
        else {
            return Ok(());
        };
        let cstar = self.incumbent.load(Ordering::Relaxed) as u32;
        let hs: std::collections::BTreeSet<u32> = h.iter().collect();
        let ss: std::collections::BTreeSet<u32> = s.iter().copied().collect();
        for &u in hs.symmetric_difference(&ss) {
            if self.coreness[u as usize] >= cstar {
                return Err(format!(
                    "vertex {u} (coreness {}) diverges between representations of {v} \
                     but is still in the zone of interest (incumbent {cstar})",
                    self.coreness[u as usize]
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lazymc_graph::{gen, CsrGraph};
    use lazymc_order::{coreness_degree_order, kcore_sequential};

    fn setup(g: &CsrGraph, incumbent: usize) -> (VertexOrder, Vec<u32>, Arc<AtomicUsize>) {
        let kc = kcore_sequential(g);
        let ord = coreness_degree_order(g, &kc.coreness);
        (ord, kc.coreness, Arc::new(AtomicUsize::new(incumbent)))
    }

    #[test]
    fn hashed_and_sorted_agree_when_built_together() {
        let g = gen::gnp(120, 0.08, 1);
        let (ord, core, inc) = setup(&g, 0);
        let lg = LazyGraph::new(&g, &ord, &core, inc);
        for v in 0..120u32 {
            let h = lg.hashed(v).to_sorted_vec();
            let s = lg.sorted(v).to_vec();
            assert_eq!(h, s, "vertex {v}");
        }
    }

    #[test]
    fn unfiltered_matches_original_neighborhood() {
        let g = gen::gnp(80, 0.1, 2);
        let (ord, core, inc) = setup(&g, 0);
        let lg = LazyGraph::new(&g, &ord, &core, inc);
        for v in 0..80u32 {
            let got = lg.sorted(v);
            let mut want: Vec<u32> = g
                .neighbors(ord.to_original(v))
                .iter()
                .map(|&u| ord.to_relabelled(u))
                .collect();
            want.sort_unstable();
            assert_eq!(got, &want[..], "vertex {v}");
        }
    }

    #[test]
    fn filtering_removes_low_coreness_neighbors() {
        // star: center has coreness 1, leaves 1. incumbent 2 removes all.
        let g = gen::star(10);
        let (ord, core, inc) = setup(&g, 2);
        let lg = LazyGraph::new(&g, &ord, &core, inc);
        for v in 0..10u32 {
            assert!(lg.sorted(v).is_empty(), "vertex {v} should filter to empty");
            assert!(lg.hashed(v).is_empty());
        }
    }

    #[test]
    fn filtering_keeps_core_of_planted_clique() {
        let g = gen::planted_clique(60, 0.03, 8, 3);
        let kc = kcore_sequential(&g);
        let ord = coreness_degree_order(&g, &kc.coreness);
        let inc = Arc::new(AtomicUsize::new(7));
        let lg = LazyGraph::new(&g, &ord, &kc.coreness, inc);
        // every kept neighbor has coreness >= 7
        for v in 0..60u32 {
            for &u in lg.sorted(v) {
                assert!(lg.coreness(u) >= 7);
            }
        }
    }

    #[test]
    fn laziness_builds_nothing_until_queried() {
        let g = gen::gnp(50, 0.1, 4);
        let (ord, core, inc) = setup(&g, 0);
        let lg = LazyGraph::new(&g, &ord, &core, inc);
        assert_eq!(lg.built_counts(), (0, 0));
        lg.hashed(3);
        lg.hashed(3); // memoized: no second build
        lg.sorted(7);
        assert_eq!(lg.built_counts(), (1, 1));
    }

    #[test]
    fn right_sorted_strictly_greater() {
        let g = gen::gnp(100, 0.1, 5);
        let (ord, core, inc) = setup(&g, 0);
        let lg = LazyGraph::new(&g, &ord, &core, inc);
        for v in 0..100u32 {
            for &u in lg.right_sorted(v) {
                assert!(u > v);
            }
            // right + left partition the filtered neighbourhood
            let all = lg.sorted(v).len();
            let right = lg.right_sorted(v).len();
            let left = lg.sorted(v).iter().filter(|&&u| u < v).count();
            assert_eq!(left + right, all);
        }
    }

    #[test]
    fn any_prefers_existing_hash() {
        let g = gen::gnp(40, 0.2, 6);
        let (ord, core, inc) = setup(&g, 0);
        let lg = LazyGraph::new(&g, &ord, &core, inc);
        lg.hashed(0);
        match lg.any(0) {
            NeighborRef::Hash(_) => {}
            NeighborRef::Sorted(_) => panic!("should reuse the hash representation"),
        }
    }

    #[test]
    fn any_chooses_by_degree_when_absent() {
        let g = gen::star(40); // center degree 39, leaves degree 1
        let (ord, core, inc) = setup(&g, 0);
        let lg = LazyGraph::new(&g, &ord, &core, inc);
        let center_rel = ord.to_relabelled(0);
        match lg.any(center_rel) {
            NeighborRef::Hash(_) => {}
            NeighborRef::Sorted(_) => panic!("high degree should get a hash set"),
        }
        let leaf_rel = ord.to_relabelled(1);
        match lg.any(leaf_rel) {
            NeighborRef::Sorted(_) => {}
            NeighborRef::Hash(_) => panic!("low degree should get a sorted array"),
        }
    }

    #[test]
    fn prepopulate_policies() {
        let g = gen::planted_clique(80, 0.05, 8, 7);
        let kc = kcore_sequential(&g);
        let ord = coreness_degree_order(&g, &kc.coreness);

        let inc = Arc::new(AtomicUsize::new(0));
        let lg = LazyGraph::new(&g, &ord, &kc.coreness, inc.clone());
        lg.prepopulate(PrePopulate::None, 8);
        assert_eq!(lg.built_counts().1, 0);
        lg.prepopulate(PrePopulate::Must, 8);
        let must_count = lg.built_counts().1;
        let expected = kc.coreness.iter().filter(|&&c| c >= 8).count();
        assert_eq!(must_count, expected);
        lg.prepopulate(PrePopulate::All, 8);
        assert_eq!(lg.built_counts().1, 80);
    }

    #[test]
    fn divergent_representations_only_differ_outside_zone() {
        let g = gen::planted_clique(100, 0.05, 9, 8);
        let kc = kcore_sequential(&g);
        let ord = coreness_degree_order(&g, &kc.coreness);
        let inc = Arc::new(AtomicUsize::new(2));
        let lg = LazyGraph::new(&g, &ord, &kc.coreness, inc.clone());
        // Build hashes early (incumbent = 2)…
        for v in 0..100u32 {
            lg.hashed(v);
        }
        // …then the incumbent grows and sorted reps see a tighter filter.
        inc.store(8, Ordering::Relaxed);
        for v in 0..100u32 {
            lg.sorted(v);
            lg.check_divergence_invariant(v).unwrap();
        }
    }

    #[test]
    fn concurrent_construction_is_consistent() {
        let g = gen::gnp(300, 0.05, 9);
        let (ord, core, inc) = setup(&g, 0);
        let lg = LazyGraph::new(&g, &ord, &core, inc);
        // Hammer the same vertices from many threads.
        (0..300u32).into_par_iter().for_each(|i| {
            let v = i % 16;
            let h = lg.hashed(v);
            let s = lg.sorted(v);
            assert_eq!(h.len(), s.len());
        });
        // Each of the 16 vertices built exactly once per representation.
        assert_eq!(lg.built_counts(), (16, 16));
    }
}
