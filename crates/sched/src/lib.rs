//! One machine-wide work-stealing pool shared by every running solve.
//!
//! Before this crate the daemon's parallelism was siloed: N solver workers
//! each owned one job, and intra-solve subtree splitting could only use
//! that job's private thread share. Here every unit of work — a root solve
//! job popped from the service queue, or one subtree of a running solve's
//! branch-and-bound tree — lands in the *same* scheduler, so a lone hard
//! query soaks every idle core and a burst of easy queries is never
//! starved behind it.
//!
//! Shape (the classic work-stealing trio, dependency-free):
//!
//! * **per-worker LIFO deques** — a scope's subtree tickets go to the
//!   deque of the worker that created the scope; the owner keeps working
//!   depth-first while idle workers steal *half* the deque from the front
//!   (oldest, outermost, biggest subtrees first).
//! * **a global injector** — a priority heap ordered by [`TaskKey`]
//!   (priority desc, deadline-earliest, then FIFO). Tickets published from
//!   non-worker threads and preempted tickets land here.
//! * **park/unpark via eventfd** — an idle worker parks on its own
//!   [`lazymc_netio::Wakeup`] doorbell through epoll; pushes poke exactly
//!   as many parked workers as there is new work.
//!
//! Work is *claimed*, not moved: a scope is a shared counter over `units`
//! bodies, and a ticket is an invitation for one worker to join the claim
//! loop. That keeps the hot path allocation-free for the solver kernels
//! (claims are a CAS; task payloads stay in the owner's pooled arenas) and
//! makes cancellation trivial — a tripped solve drains at claim speed, and
//! stale tickets of a finished scope are discarded on pop without ever
//! touching the (long gone) scope body.
//!
//! Between claims a helper re-checks the pool for strictly more urgent
//! work (an earlier-deadline job or scope). If it finds any, it re-posts
//! its ticket to the injector and returns to the main loop, so a burst of
//! short-deadline queries preempts a long solve at subtree granularity —
//! the scheduler-level form of the paper's work-avoidance discipline.

#![deny(clippy::unwrap_used)]

use lazymc_netio::{Events, Interest, Poller, Wakeup};
use std::cell::Cell;
use std::cmp::Ordering as CmpOrdering;
use std::collections::{BinaryHeap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// Locks ignoring poison. A panic inside a worker (a chaos injection, a
/// solver bug) must not cascade into every other worker that touches the
/// same deque or scope lock: the pool's mutexes guard simple containers
/// that stay consistent across an unwind, so the poison flag carries no
/// information we act on.
fn plock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Identity and urgency of one job's work, carried by every task the job
/// submits (root solve and stolen subtrees alike).
#[derive(Clone, Copy, Debug)]
pub struct TaskMeta {
    /// Stable id of the owning job (service job id, or 0 for ad-hoc work).
    pub job_id: u64,
    /// Absolute deadline, if the job has a budget. Earlier drains first.
    pub deadline: Option<Instant>,
    /// Larger is more urgent; compared before deadlines.
    pub priority: u8,
}

impl TaskMeta {
    /// Metadata for work with no job identity, no deadline, and default
    /// priority — CLI solves and tests.
    pub fn adhoc() -> TaskMeta {
        TaskMeta {
            job_id: 0,
            deadline: None,
            priority: 0,
        }
    }
}

/// Total drain order of the scheduler: priority (desc), then
/// deadline-earliest (a budgeted task beats an unbudgeted one at equal
/// priority), then submission order. `Ord` is "urgency": the maximum of a
/// heap of keys is the task to run next.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TaskKey {
    pub priority: u8,
    pub deadline: Option<Instant>,
    pub seq: u64,
}

impl TaskKey {
    pub fn new(priority: u8, deadline: Option<Instant>, seq: u64) -> TaskKey {
        TaskKey {
            priority,
            deadline,
            seq,
        }
    }
}

impl Ord for TaskKey {
    fn cmp(&self, other: &TaskKey) -> CmpOrdering {
        self.priority
            .cmp(&other.priority)
            .then_with(|| match (self.deadline, other.deadline) {
                // Earlier deadline = more urgent; having a deadline at all
                // beats not having one.
                (Some(a), Some(b)) => b.cmp(&a),
                (Some(_), None) => CmpOrdering::Greater,
                (None, Some(_)) => CmpOrdering::Less,
                (None, None) => CmpOrdering::Equal,
            })
            // Smaller seq (older) = more urgent. Seqs from different
            // domains (pool scopes vs the service queue) only break ties
            // between otherwise equal keys; any consistent order is fine.
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for TaskKey {
    fn partial_cmp(&self, other: &TaskKey) -> Option<CmpOrdering> {
        Some(self.cmp(other))
    }
}

/// A root task handed to the pool by the [`JobSource`]: one whole solve.
pub struct Job {
    pub key: TaskKey,
    pub run: Box<dyn FnOnce() + Send>,
}

/// Where root jobs come from. The service implements this over its
/// bounded priority queue; the pool compares [`JobSource::peek`] against
/// the injector's top so root jobs and stolen subtrees drain in one
/// deadline-earliest order.
pub trait JobSource: Send + Sync {
    /// Urgency of the next job, if any (must be cheap; called per idle
    /// scan).
    fn peek(&self) -> Option<TaskKey>;
    /// Takes the next job. May return `None` on a race with another
    /// worker.
    fn take(&self) -> Option<Job>;
}

// ---------------------------------------------------------------------------
// Scope: a claimable batch of work units
// ---------------------------------------------------------------------------

/// Type of a scope body behind the erased pointer in [`ScopeCore`].
type BodyFn = dyn Fn(&Scope<'_>, usize) + Sync;

/// Shared state of one scope: `limit` units of work, claimed by CAS on
/// `next`, completion detected as `done == limit`.
///
/// The body pointer's lifetime is erased. Safety argument, load-bearing:
/// [`SchedHandle::scope`] does not return until `done == limit`. A unit
/// counts into `done` only after its body invocation returned, and `limit`
/// only grows from *running* bodies (via [`Scope::publish`]), so
/// `done == limit` implies no body is running and no claim can ever
/// succeed again (`next >= limit`, and `limit` is final). A stale ticket
/// popped later observes `next >= limit` and is discarded without
/// dereferencing `body`.
struct ScopeCore {
    key: TaskKey,
    next: AtomicUsize,
    limit: AtomicUsize,
    done: AtomicUsize,
    /// Maximum helpers that should join (ticket top-up bound).
    helpers: usize,
    /// Tickets currently sitting in deques/injector (approximate).
    tickets: AtomicUsize,
    panicked: AtomicBool,
    lock: Mutex<()>,
    cv: Condvar,
    body: *const BodyFn,
}

// SAFETY: all fields are Sync except `body`, which is a shared `&(dyn Fn +
// Sync)` with its lifetime erased; the completion protocol documented on
// the struct guarantees it is only dereferenced while the owning
// `scope()` frame is alive.
unsafe impl Send for ScopeCore {}
unsafe impl Sync for ScopeCore {}

impl ScopeCore {
    /// Claims the next unclaimed unit, if any.
    fn claim(&self) -> Option<usize> {
        let mut cur = self.next.load(Ordering::Relaxed);
        loop {
            if cur >= self.limit.load(Ordering::Acquire) {
                return None;
            }
            match self
                .next
                .compare_exchange_weak(cur, cur + 1, Ordering::AcqRel, Ordering::Relaxed)
            {
                Ok(_) => return Some(cur),
                Err(seen) => cur = seen,
            }
        }
    }

    /// Units published but not yet claimed.
    fn unclaimed(&self) -> usize {
        self.limit
            .load(Ordering::Acquire)
            .saturating_sub(self.next.load(Ordering::Relaxed))
    }

    fn complete(&self) -> bool {
        self.done.load(Ordering::Acquire) >= self.limit.load(Ordering::Acquire)
    }
}

/// Handle a scope body receives: lets a running unit query the pool for
/// idle capacity and grow its own scope (re-split) in response.
pub struct Scope<'a> {
    core: &'a Arc<ScopeCore>,
    pool: &'a Arc<PoolInner>,
    is_helper: bool,
}

impl Scope<'_> {
    /// Whether this unit runs on a worker other than the scope's creator —
    /// i.e. the subtree actually migrated ("a steal", in solver stats).
    pub fn is_helper(&self) -> bool {
        self.is_helper
    }

    /// Workers not currently executing work: the pool's spare capacity
    /// right now. Bodies use this to decide whether re-splitting is worth
    /// the task-generation cost.
    pub fn idle_workers(&self) -> usize {
        self.pool.idle_workers()
    }

    /// Grows the scope by `extra` units (the body will be invoked with the
    /// new indices) and tops up helper tickets. Only meaningful from a
    /// running body — this is the re-split hook.
    pub fn publish(&self, extra: usize) {
        if extra == 0 {
            return;
        }
        self.core.limit.fetch_add(extra, Ordering::AcqRel);
        // The owner may already be parked in its wait loop; new units are
        // claimable work for it.
        {
            let _g = plock(&self.core.lock);
            self.core.cv.notify_all();
        }
        self.pool.top_up_tickets(self.core);
    }
}

// ---------------------------------------------------------------------------
// Pool
// ---------------------------------------------------------------------------

/// Worker-side state: the LIFO deque, the parking doorbell, and the busy
/// accounting behind `lazymc_sched_thread_efficiency`.
struct WorkerSlot {
    deque: Mutex<VecDeque<Arc<ScopeCore>>>,
    wakeup: Wakeup,
    parked: AtomicBool,
    /// Nanoseconds spent executing task bodies (waits excluded).
    busy_ns: AtomicU64,
    /// Nanoseconds spent waiting *inside* a task (scope owner waits);
    /// subtracted from wall time by the run wrappers. Only the owning
    /// thread writes this.
    task_idle_ns: AtomicU64,
}

/// Injector entry; ordered by scope urgency.
struct Injected(Arc<ScopeCore>);

impl PartialEq for Injected {
    fn eq(&self, other: &Injected) -> bool {
        self.0.key == other.0.key
    }
}
impl Eq for Injected {}
impl PartialOrd for Injected {
    fn partial_cmp(&self, other: &Injected) -> Option<CmpOrdering> {
        Some(self.cmp(other))
    }
}
impl Ord for Injected {
    fn cmp(&self, other: &Injected) -> CmpOrdering {
        self.0.key.cmp(&other.0.key)
    }
}

struct PoolInner {
    slots: Vec<WorkerSlot>,
    injector: Mutex<BinaryHeap<Injected>>,
    source: Mutex<Option<Arc<dyn JobSource>>>,
    seq: AtomicU64,
    /// Workers currently executing a job or scope unit.
    running: AtomicUsize,
    shutdown: AtomicBool,
    steals: AtomicU64,
    parks: AtomicU64,
    unit_runs: AtomicU64,
    job_runs: AtomicU64,
    preemptions: AtomicU64,
    /// Panics caught inside workers (scope units, root jobs, or the worker
    /// loop itself). Exported as `lazymc_sched_worker_panics_total`.
    worker_panics: AtomicU64,
    /// Times a worker thread's main loop panicked and was respawned.
    worker_respawns: AtomicU64,
}

thread_local! {
    /// (pool identity, worker index) of the current thread, when it is a
    /// pool worker. Lets `scope()` distinguish "push tickets to my own
    /// deque" from "inject" and routes wait-time accounting to the right
    /// slot.
    static CTX: Cell<Option<(usize, usize)>> = const { Cell::new(None) };
}

impl PoolInner {
    fn ident(self: &Arc<Self>) -> usize {
        Arc::as_ptr(self) as usize
    }

    /// Worker index of the current thread on *this* pool, if any.
    fn my_worker(self: &Arc<Self>) -> Option<usize> {
        CTX.with(|c| match c.get() {
            Some((pool, idx)) if pool == self.ident() => Some(idx),
            _ => None,
        })
    }

    fn idle_workers(&self) -> usize {
        self.slots
            .len()
            .saturating_sub(self.running.load(Ordering::Relaxed))
    }

    /// Wakes up to `n` parked workers.
    fn wake_workers(&self, n: usize) {
        let mut woken = 0;
        for slot in &self.slots {
            if woken >= n {
                break;
            }
            if slot.parked.swap(false, Ordering::SeqCst) {
                slot.wakeup.notify();
                woken += 1;
            }
        }
    }

    /// Publishes `n` tickets for `core`: to the current worker's own deque
    /// when called from a pool worker (owner keeps locality; thieves
    /// steal), otherwise to the injector.
    fn push_tickets(self: &Arc<Self>, core: &Arc<ScopeCore>, n: usize) {
        if n == 0 {
            return;
        }
        core.tickets.fetch_add(n, Ordering::Relaxed);
        match self.my_worker() {
            Some(idx) => {
                let mut dq = plock(&self.slots[idx].deque);
                for _ in 0..n {
                    dq.push_back(core.clone());
                }
            }
            None => {
                let mut inj = plock(&self.injector);
                for _ in 0..n {
                    inj.push(Injected(core.clone()));
                }
            }
        }
        self.wake_workers(n);
    }

    /// Tops tickets up to `min(helpers, unclaimed units)` after a publish.
    fn top_up_tickets(self: &Arc<Self>, core: &Arc<ScopeCore>) {
        let want = core.helpers.min(core.unclaimed());
        let have = core.tickets.load(Ordering::Relaxed);
        if want > have {
            self.push_tickets(core, want - have);
        }
    }

    /// Whether the pool holds work strictly more urgent than `key`
    /// (injector top or next root job). Drives helper preemption.
    fn more_urgent_than(&self, key: &TaskKey) -> bool {
        {
            let inj = plock(&self.injector);
            if let Some(top) = inj.peek() {
                if top.0.key > *key {
                    return true;
                }
            }
        }
        if self.shutdown.load(Ordering::Relaxed) {
            return false;
        }
        let src = plock(&self.source).clone();
        if let Some(src) = src {
            if let Some(sk) = src.peek() {
                return sk > *key;
            }
        }
        false
    }

    /// Anything runnable anywhere? (Park-side recheck.)
    fn has_work(&self) -> bool {
        if self.shutdown.load(Ordering::Relaxed) {
            return true; // wake to observe shutdown
        }
        if self.slots.iter().any(|s| !plock(&s.deque).is_empty()) {
            return true;
        }
        if !plock(&self.injector).is_empty() {
            return true;
        }
        let src = plock(&self.source).clone();
        src.is_some_and(|s| s.peek().is_some())
    }
}

/// What a global scan picked: a subtree ticket or a whole root job.
enum Picked {
    Ticket(Arc<ScopeCore>),
    Job(Job),
}

/// Cloneable handle to the pool: scope submission, capacity queries,
/// source wiring, metrics. This is what `crates/core` threads through a
/// solve in place of the old static `solver_threads` share.
#[derive(Clone)]
pub struct SchedHandle {
    inner: Arc<PoolInner>,
}

impl SchedHandle {
    /// Number of pool workers.
    pub fn workers(&self) -> usize {
        self.inner.slots.len()
    }

    /// Workers not currently executing work — the capacity query behind
    /// split decisions.
    pub fn idle_workers(&self) -> usize {
        self.inner.idle_workers()
    }

    /// Wires the root-job source (service queue). Call once at startup.
    pub fn set_source(&self, source: Arc<dyn JobSource>) {
        *plock(&self.inner.source) = Some(source);
    }

    /// Pokes a parked worker after the source gained a job.
    pub fn notify_source(&self) {
        self.inner.wake_workers(1);
    }

    /// Runs `units` invocations of `body` (indices `0..units`, plus any
    /// grown via [`Scope::publish`]) across the calling thread and up to
    /// `max_helpers` pool workers; returns when all are complete. The
    /// caller always participates — completion never depends on pool
    /// capacity — and drives its own scope without preemption, while
    /// helpers between claims yield to strictly more urgent pool work.
    ///
    /// `meta` orders this scope's tickets against every other job in the
    /// machine. Bodies run concurrently and must be `Sync`; a panicking
    /// body poisons the scope (remaining units are skipped) and the panic
    /// resurfaces here after all in-flight units finish.
    pub fn scope(
        &self,
        meta: TaskMeta,
        max_helpers: usize,
        units: usize,
        body: &(dyn Fn(&Scope<'_>, usize) + Sync),
    ) {
        if units == 0 {
            return;
        }
        let inner = &self.inner;
        let key = TaskKey::new(
            meta.priority,
            meta.deadline,
            inner.seq.fetch_add(1, Ordering::Relaxed),
        );
        // A worker calling scope() occupies its own slot; only the other
        // workers can help.
        let avail = match inner.my_worker() {
            Some(_) => inner.slots.len().saturating_sub(1),
            None => inner.slots.len(),
        };
        let helpers = max_helpers.min(avail).min(units.saturating_sub(1));
        // SAFETY: lifetime erasure justified by the completion protocol on
        // `ScopeCore` — this frame outlives every dereference.
        let body_static: &'static BodyFn = unsafe { std::mem::transmute(body) };
        let core = Arc::new(ScopeCore {
            key,
            next: AtomicUsize::new(0),
            limit: AtomicUsize::new(units),
            done: AtomicUsize::new(0),
            helpers,
            tickets: AtomicUsize::new(0),
            panicked: AtomicBool::new(false),
            lock: Mutex::new(()),
            cv: Condvar::new(),
            body: body_static as *const BodyFn,
        });
        if helpers > 0 {
            inner.push_tickets(&core, helpers);
        }
        let scope = Scope {
            core: &core,
            pool: inner,
            is_helper: false,
        };
        loop {
            while let Some(i) = run_claimed(inner, &core, &scope) {
                let _ = i;
            }
            let mut g = plock(&core.lock);
            if core.complete() {
                break;
            }
            // Claimable units may appear (publish) or everything may
            // finish while we slept; the timeout is belt-and-braces.
            let t0 = Instant::now();
            let (g2, _) = core
                .cv
                .wait_timeout(g, Duration::from_millis(50))
                .unwrap_or_else(PoisonError::into_inner);
            g = g2;
            drop(g);
            let waited = t0.elapsed().as_nanos() as u64;
            if let Some(idx) = inner.my_worker() {
                inner.slots[idx]
                    .task_idle_ns
                    .fetch_add(waited, Ordering::Relaxed);
            }
        }
        if core.panicked.load(Ordering::Relaxed) {
            panic!("sched scope body panicked");
        }
    }

    /// Pool-wide counters and per-worker busy time, for `/metrics`.
    pub fn metrics(&self) -> SchedMetrics {
        let inner = &self.inner;
        SchedMetrics {
            workers: inner
                .slots
                .iter()
                .map(|s| WorkerMetrics {
                    busy_ns: s.busy_ns.load(Ordering::Relaxed),
                })
                .collect(),
            steals: inner.steals.load(Ordering::Relaxed),
            parks: inner.parks.load(Ordering::Relaxed),
            unit_runs: inner.unit_runs.load(Ordering::Relaxed),
            job_runs: inner.job_runs.load(Ordering::Relaxed),
            preemptions: inner.preemptions.load(Ordering::Relaxed),
            worker_panics: inner.worker_panics.load(Ordering::Relaxed),
            worker_respawns: inner.worker_respawns.load(Ordering::Relaxed),
        }
    }
}

/// Snapshot of scheduler counters (monotonic since pool start).
pub struct SchedMetrics {
    pub workers: Vec<WorkerMetrics>,
    /// Tickets taken from another worker's deque.
    pub steals: u64,
    /// Times a worker parked on its doorbell.
    pub parks: u64,
    /// Scope units executed.
    pub unit_runs: u64,
    /// Root jobs executed.
    pub job_runs: u64,
    /// Times a helper re-posted its ticket for more urgent work.
    pub preemptions: u64,
    /// Panics caught inside workers (scope units, root jobs, worker loop).
    pub worker_panics: u64,
    /// Worker threads respawned after their main loop panicked.
    pub worker_respawns: u64,
}

pub struct WorkerMetrics {
    pub busy_ns: u64,
}

/// The pool itself: owns the worker threads. Dropping (or calling
/// [`Pool::shutdown`]) stops the workers after in-flight work completes.
pub struct Pool {
    inner: Arc<PoolInner>,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl Pool {
    /// Spawns `workers` (≥ 1) pool threads named `lazymc-sched-<i>`.
    pub fn new(workers: usize) -> Pool {
        let workers = workers.max(1);
        let slots = (0..workers)
            .map(|_| WorkerSlot {
                deque: Mutex::new(VecDeque::new()),
                wakeup: Wakeup::new().expect("eventfd"),
                parked: AtomicBool::new(false),
                busy_ns: AtomicU64::new(0),
                task_idle_ns: AtomicU64::new(0),
            })
            .collect();
        let inner = Arc::new(PoolInner {
            slots,
            injector: Mutex::new(BinaryHeap::new()),
            source: Mutex::new(None),
            seq: AtomicU64::new(0),
            running: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            steals: AtomicU64::new(0),
            parks: AtomicU64::new(0),
            unit_runs: AtomicU64::new(0),
            job_runs: AtomicU64::new(0),
            preemptions: AtomicU64::new(0),
            worker_panics: AtomicU64::new(0),
            worker_respawns: AtomicU64::new(0),
        });
        let threads = (0..workers)
            .map(|idx| {
                let inner = inner.clone();
                std::thread::Builder::new()
                    .name(format!("lazymc-sched-{idx}"))
                    .spawn(move || worker_main(inner, idx))
                    .expect("spawn sched worker")
            })
            .collect();
        Pool { inner, threads }
    }

    pub fn handle(&self) -> SchedHandle {
        SchedHandle {
            inner: self.inner.clone(),
        }
    }

    /// Stops accepting root jobs, drains queued tickets, and joins the
    /// workers. Scopes whose owners are still running complete regardless
    /// (owners self-drive).
    pub fn shutdown(&mut self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        for slot in &self.inner.slots {
            slot.parked.store(false, Ordering::SeqCst);
            slot.wakeup.notify();
        }
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

// ---------------------------------------------------------------------------
// Worker loop
// ---------------------------------------------------------------------------

/// Marks a worker as running for the duration of a task, restoring the
/// count even if the task unwinds (a leaked `running` would undercount
/// idle capacity forever).
struct RunningGuard<'a>(&'a PoolInner);

impl<'a> RunningGuard<'a> {
    fn enter(inner: &'a PoolInner) -> RunningGuard<'a> {
        inner.running.fetch_add(1, Ordering::Relaxed);
        RunningGuard(inner)
    }
}

impl Drop for RunningGuard<'_> {
    fn drop(&mut self) {
        self.0.running.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Claims and runs one unit of `core`, with busy accounting and panic
/// capture. Returns the index run, or `None` when nothing was claimable.
fn run_claimed(inner: &Arc<PoolInner>, core: &Arc<ScopeCore>, scope: &Scope<'_>) -> Option<usize> {
    let i = core.claim()?;
    inner.unit_runs.fetch_add(1, Ordering::Relaxed);
    if !core.panicked.load(Ordering::Relaxed) {
        // SAFETY: a successful claim (i < limit) means the owner's
        // `scope()` frame — and therefore the body — is still alive; see
        // `ScopeCore`.
        let body = unsafe { &*core.body };
        let unit = AssertUnwindSafe(|| {
            lazymc_chaos::point!("sched.unit");
            body(scope, i)
        });
        if catch_unwind(unit).is_err() {
            core.panicked.store(true, Ordering::Relaxed);
            inner.worker_panics.fetch_add(1, Ordering::Relaxed);
        }
    }
    let prev = core.done.fetch_add(1, Ordering::AcqRel);
    if prev + 1 >= core.limit.load(Ordering::Acquire) {
        let _g = plock(&core.lock);
        core.cv.notify_all();
    }
    Some(i)
}

/// Runs a popped ticket as a helper: joins `core`'s claim loop until it
/// drains, yielding back to the main loop if strictly more urgent work
/// appears in the pool.
fn run_ticket(inner: &Arc<PoolInner>, idx: usize, core: Arc<ScopeCore>) {
    core.tickets.fetch_sub(1, Ordering::Relaxed);
    let _running = RunningGuard::enter(inner);
    let slot = &inner.slots[idx];
    let t0 = Instant::now();
    let idle0 = slot.task_idle_ns.load(Ordering::Relaxed);
    let scope = Scope {
        core: &core,
        pool: inner,
        is_helper: true,
    };
    loop {
        if core.unclaimed() == 0 {
            break;
        }
        if inner.more_urgent_than(&core.key) {
            // Re-post the invitation so someone returns to this scope
            // after the urgent work, and go handle the urgent work.
            inner.preemptions.fetch_add(1, Ordering::Relaxed);
            core.tickets.fetch_add(1, Ordering::Relaxed);
            plock(&inner.injector).push(Injected(core.clone()));
            break;
        }
        if run_claimed(inner, &core, &scope).is_none() {
            break;
        }
    }
    let idle = slot.task_idle_ns.load(Ordering::Relaxed) - idle0;
    let busy = (t0.elapsed().as_nanos() as u64).saturating_sub(idle);
    slot.busy_ns.fetch_add(busy, Ordering::Relaxed);
}

/// Runs a root job popped from the source.
fn run_job(inner: &Arc<PoolInner>, idx: usize, job: Job) {
    inner.job_runs.fetch_add(1, Ordering::Relaxed);
    let _running = RunningGuard::enter(inner);
    let slot = &inner.slots[idx];
    let t0 = Instant::now();
    let idle0 = slot.task_idle_ns.load(Ordering::Relaxed);
    // Job bodies (service solves) catch their own panics; this is the
    // backstop that keeps a worker alive either way.
    if catch_unwind(AssertUnwindSafe(job.run)).is_err() {
        inner.worker_panics.fetch_add(1, Ordering::Relaxed);
    }
    let idle = slot.task_idle_ns.load(Ordering::Relaxed) - idle0;
    let busy = (t0.elapsed().as_nanos() as u64).saturating_sub(idle);
    slot.busy_ns.fetch_add(busy, Ordering::Relaxed);
}

/// One global scan: the more urgent of injector top vs next root job.
/// Root jobs are only ever started here (the worker main loop), never
/// from inside a scope, so a solve cannot nest inside another solve.
fn pick_global(inner: &Arc<PoolInner>) -> Option<Picked> {
    let shutdown = inner.shutdown.load(Ordering::Relaxed);
    let mut inj = plock(&inner.injector);
    let ikey = inj.peek().map(|t| t.0.key);
    let src = if shutdown {
        None
    } else {
        plock(&inner.source).clone()
    };
    let skey = src.as_ref().and_then(|s| s.peek());
    match (ikey, skey) {
        (None, None) => None,
        (Some(_), None) => inj.pop().map(|t| Picked::Ticket(t.0)),
        (None, Some(_)) => {
            drop(inj);
            src.and_then(|s| s.take()).map(Picked::Job)
        }
        (Some(ik), Some(sk)) => {
            if ik >= sk {
                inj.pop().map(|t| Picked::Ticket(t.0))
            } else {
                drop(inj);
                src.and_then(|s| s.take()).map(Picked::Job)
            }
        }
    }
}

/// Steals half of some other worker's deque (from the front: oldest,
/// outermost tickets), keeping the first for immediate execution.
fn steal_half(inner: &Arc<PoolInner>, idx: usize) -> Option<Arc<ScopeCore>> {
    let n = inner.slots.len();
    for off in 1..n {
        let victim = (idx + off) % n;
        let mut grabbed = {
            let mut dq = plock(&inner.slots[victim].deque);
            if dq.is_empty() {
                continue;
            }
            let take = dq.len().div_ceil(2);
            dq.drain(..take).collect::<Vec<_>>()
        };
        inner
            .steals
            .fetch_add(grabbed.len() as u64, Ordering::Relaxed);
        let first = grabbed.remove(0);
        if !grabbed.is_empty() {
            let mut dq = plock(&inner.slots[idx].deque);
            dq.extend(grabbed);
        }
        return Some(first);
    }
    None
}

/// Worker thread entry: supervises [`worker_loop`]. A panic that escapes
/// the per-task catch_unwind (or a chaos injection at `sched.worker`)
/// kills one loop iteration set, not the thread — the supervisor counts
/// it and re-enters the loop, so the pool never silently loses capacity.
fn worker_main(inner: Arc<PoolInner>, idx: usize) {
    CTX.with(|c| c.set(Some((Arc::as_ptr(&inner) as usize, idx))));
    loop {
        if catch_unwind(AssertUnwindSafe(|| worker_loop(&inner, idx))).is_ok() {
            // Clean return: shutdown observed.
            break;
        }
        inner.worker_panics.fetch_add(1, Ordering::Relaxed);
        if inner.shutdown.load(Ordering::SeqCst) {
            break;
        }
        inner.worker_respawns.fetch_add(1, Ordering::Relaxed);
        eprintln!("warning: lazymc-sched-{idx} worker loop panicked; respawning");
        // Pace pathological crash loops (e.g. chaos `sched.worker=panic`).
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn worker_loop(inner: &Arc<PoolInner>, idx: usize) {
    // A respawned worker rebuilds its poller; if epoll itself is failing,
    // fall back to sleep-parking rather than dying.
    let poller = Poller::new().ok();
    if let Some(p) = &poller {
        let _ = p.register(inner.slots[idx].wakeup.fd(), 0, Interest::READ);
    }
    let mut events = Events::with_capacity(4);
    loop {
        lazymc_chaos::point!("sched.worker");
        // 1. Own deque, LIFO (newest ticket: deepest, cache-hot).
        let mine = plock(&inner.slots[idx].deque).pop_back();
        if let Some(core) = mine {
            run_ticket(inner, idx, core);
            continue;
        }
        // 2. Global order: injector vs root-job source, deadline-earliest.
        match pick_global(inner) {
            Some(Picked::Ticket(core)) => {
                run_ticket(inner, idx, core);
                continue;
            }
            Some(Picked::Job(job)) => {
                run_job(inner, idx, job);
                continue;
            }
            None => {}
        }
        // 3. Steal half a victim's deque.
        if let Some(core) = steal_half(inner, idx) {
            run_ticket(inner, idx, core);
            continue;
        }
        // 4. Nothing anywhere: exit on shutdown, else park on the
        // doorbell.
        if inner.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let slot = &inner.slots[idx];
        slot.parked.store(true, Ordering::SeqCst);
        if inner.has_work() {
            slot.parked.store(false, Ordering::SeqCst);
            continue;
        }
        inner.parks.fetch_add(1, Ordering::Relaxed);
        // Level-triggered epoll on the eventfd: a notify between the
        // recheck above and this wait is still seen immediately. The
        // timeout is a liveness backstop only.
        match &poller {
            Some(p) => {
                let _ = p.wait(&mut events, Some(Duration::from_millis(50)));
            }
            None => std::thread::sleep(Duration::from_millis(5)),
        }
        slot.wakeup.drain();
        slot.parked.store(false, Ordering::SeqCst);
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    fn key(priority: u8, deadline_ms: Option<u64>, seq: u64) -> TaskKey {
        let base = Instant::now();
        TaskKey::new(
            priority,
            deadline_ms.map(|ms| base + Duration::from_millis(ms)),
            seq,
        )
    }

    #[test]
    fn key_order_priority_then_deadline_then_fifo() {
        let urgent = key(1, None, 5);
        let normal = key(0, None, 1);
        assert!(urgent > normal);
        let soon = key(0, Some(10), 9);
        let late = key(0, Some(10_000), 2);
        assert!(soon > late);
        let budgeted = key(0, Some(10_000), 9);
        let unbudgeted = key(0, None, 1);
        assert!(budgeted > unbudgeted);
        let older = key(0, None, 1);
        let newer = key(0, None, 2);
        assert!(older > newer);
    }

    #[test]
    fn scope_runs_every_unit_exactly_once() {
        let pool = Pool::new(3);
        let h = pool.handle();
        let hits: Vec<AtomicU32> = (0..100).map(|_| AtomicU32::new(0)).collect();
        h.scope(TaskMeta::adhoc(), 2, hits.len(), &|_s, i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn scope_publish_grows_the_scope() {
        let pool = Pool::new(2);
        let h = pool.handle();
        let hits = AtomicU32::new(0);
        let grown = AtomicBool::new(false);
        h.scope(TaskMeta::adhoc(), 1, 4, &|s, _i| {
            hits.fetch_add(1, Ordering::Relaxed);
            if !grown.swap(true, Ordering::Relaxed) {
                s.publish(3);
            }
        });
        assert_eq!(hits.load(Ordering::Relaxed), 7);
    }

    #[test]
    fn scope_completes_with_zero_helpers() {
        let pool = Pool::new(1);
        let h = pool.handle();
        let hits = AtomicU32::new(0);
        h.scope(TaskMeta::adhoc(), 0, 10, &|_s, _i| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn nested_scopes_complete() {
        let pool = Pool::new(4);
        let h = pool.handle();
        let hits = AtomicU32::new(0);
        let h2 = h.clone();
        h.scope(TaskMeta::adhoc(), 3, 4, &|_s, _i| {
            h2.scope(TaskMeta::adhoc(), 3, 8, &|_s2, _j| {
                hits.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(hits.load(Ordering::Relaxed), 32);
    }

    #[test]
    fn jobs_drain_from_source_in_urgency_order() {
        type QueuedRun = (TaskKey, Box<dyn FnOnce() + Send>);
        struct VecSource {
            jobs: Mutex<Vec<QueuedRun>>,
        }
        impl JobSource for VecSource {
            fn peek(&self) -> Option<TaskKey> {
                let g = self.jobs.lock().unwrap();
                g.iter().map(|(k, _)| *k).max()
            }
            fn take(&self) -> Option<Job> {
                let mut g = self.jobs.lock().unwrap();
                let best = g
                    .iter()
                    .enumerate()
                    .max_by_key(|(_, (k, _))| *k)
                    .map(|(i, _)| i)?;
                let (key, run) = g.remove(best);
                Some(Job { key, run })
            }
        }
        let order = Arc::new(Mutex::new(Vec::new()));
        let mk = |tag: u32, order: &Arc<Mutex<Vec<u32>>>| {
            let order = order.clone();
            Box::new(move || {
                order.lock().unwrap().push(tag);
            }) as Box<dyn FnOnce() + Send>
        };
        // One worker so execution order is observable.
        let pool = Pool::new(1);
        let h = pool.handle();
        let src = Arc::new(VecSource {
            jobs: Mutex::new(vec![
                (key(0, Some(10_000), 1), mk(1, &order)),
                (key(0, Some(10), 2), mk(2, &order)),
                (key(1, None, 3), mk(3, &order)),
            ]),
        });
        h.set_source(src);
        h.notify_source();
        let t0 = Instant::now();
        while order.lock().unwrap().len() < 3 && t0.elapsed() < Duration::from_secs(5) {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(*order.lock().unwrap(), vec![3, 2, 1]);
    }

    #[test]
    fn scope_panic_propagates_after_completion() {
        let pool = Pool::new(2);
        let h = pool.handle();
        let r = std::panic::catch_unwind(AssertUnwindSafe(|| {
            h.scope(TaskMeta::adhoc(), 1, 8, &|_s, i| {
                if i == 3 {
                    panic!("boom");
                }
            });
        }));
        assert!(r.is_err());
        // Pool still works afterwards.
        let hits = AtomicU32::new(0);
        h.scope(TaskMeta::adhoc(), 1, 4, &|_s, _i| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn worker_panics_are_counted_and_pool_survives() {
        let pool = Pool::new(2);
        let h = pool.handle();
        let r = std::panic::catch_unwind(AssertUnwindSafe(|| {
            h.scope(TaskMeta::adhoc(), 1, 8, &|_s, i| {
                if i == 2 {
                    panic!("unit boom");
                }
            });
        }));
        assert!(r.is_err());
        let m = h.metrics();
        assert!(
            m.worker_panics >= 1,
            "panic not counted: {}",
            m.worker_panics
        );
        // The pool keeps scheduling work afterwards.
        let hits = AtomicU32::new(0);
        h.scope(TaskMeta::adhoc(), 1, 4, &|_s, _i| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn busy_metrics_accumulate() {
        let pool = Pool::new(2);
        let h = pool.handle();
        // Worker participation is scheduling-dependent: on a loaded
        // single-core host the owner can claim an entire scope before a
        // helper ever wakes, leaving worker busy_ns at 0. Re-post scopes
        // until a helper has run at least one unit of the sleep work.
        let mut units = 0u64;
        for _ in 0..50 {
            h.scope(TaskMeta::adhoc(), 1, 16, &|_s, _i| {
                std::thread::sleep(Duration::from_millis(2));
            });
            units += 16;
            let m = h.metrics();
            assert_eq!(m.unit_runs, units);
            assert!(m.workers.len() == 2);
            if m.workers.iter().map(|w| w.busy_ns).sum::<u64>() > 0 {
                return;
            }
        }
        panic!("no pool worker accumulated busy_ns over 50 scopes");
    }
}
