//! Per-connection state machine: incremental HTTP/1.1 request parsing,
//! buffered partial writes, keep-alive, and progress timeouts.
//!
//! A [`Conn`] owns one nonblocking socket registered with the reactor's
//! poller. It never blocks: readable events append bytes to an input
//! buffer that the incremental [`Parser`] consumes; complete requests are
//! handed to the router; responses are queued into an output buffer that
//! drains on writable events. The framing-hardening rules of the old
//! blocking parser are preserved verbatim — duplicate/conflicting
//! `Content-Length` → 400, any `Transfer-Encoding` → 501, header line and
//! count caps — they are enforced *incrementally*, so an attacker cannot
//! buffer their way past them with a slow drip feed.
//!
//! Timeouts are progress-based: a connection with a partially received
//! request that stalls past the read timeout gets `408 Request Timeout`
//! (slow-loris defense); an *idle* keep-alive connection is closed
//! silently, exactly like the old per-socket read timeout did.

use std::collections::VecDeque;
use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;
use std::time::Instant;

/// Longest accepted request line or header line (terminator included).
pub(crate) const MAX_HEADER_LINE: usize = 16 * 1024;
/// Most header lines accepted per request.
pub(crate) const MAX_HEADERS: usize = 100;
/// Most bytes of *pipelined* follow-up input buffered while a request is
/// still being answered; beyond it the connection stops reading until the
/// response drains (bounded memory per connection).
const MAX_PIPELINED_BUFFER: usize = 64 * 1024;

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    pub method: String,
    /// Path including any query string (`/solve?async=1`).
    pub path: String,
    pub body: String,
    pub keep_alive: bool,
    /// Trace id for this request. The parser captures a raw inbound
    /// `X-Request-Id` here; the reactor replaces it with the *resolved*
    /// id (validated inbound value, or a freshly minted one) before the
    /// request is routed, so every handler downstream sees the id the
    /// response will echo.
    pub trace: Option<String>,
}

impl Request {
    /// The path without its query string.
    pub fn route_path(&self) -> &str {
        self.path.split('?').next().unwrap_or(&self.path)
    }

    /// Whether the query string carries `key=1` or `key=true` (or a bare
    /// `key`).
    pub fn query_flag(&self, key: &str) -> bool {
        let Some(query) = self.path.split_once('?').map(|(_, q)| q) else {
            return false;
        };
        query.split('&').any(|pair| {
            let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
            k == key && matches!(v, "" | "1" | "true")
        })
    }
}

/// An HTTP response ready for serialization.
pub struct Response {
    pub status: u16,
    pub content_type: &'static str,
    pub body: String,
    pub retry_after: Option<u64>,
    /// Trace id echoed as an `X-Request-Id` response header (set by the
    /// reactor at delivery; handlers never fill it themselves).
    pub request_id: Option<String>,
}

impl Response {
    pub fn json(status: u16, value: crate::protocol::Json) -> Response {
        Response {
            status,
            content_type: "application/json",
            body: value.encode(),
            retry_after: None,
            request_id: None,
        }
    }

    pub fn error(status: u16, message: impl Into<String>) -> Response {
        Response::json(
            status,
            crate::protocol::Json::obj(vec![("error", crate::protocol::Json::str(message.into()))]),
        )
    }

    pub fn text(status: u16, content_type: &'static str, body: String) -> Response {
        Response {
            status,
            content_type,
            body,
            retry_after: None,
            request_id: None,
        }
    }

    /// Serializes as a one-shot close-delimited response (used for the
    /// pre-registration 503 at the connection limit).
    pub(crate) fn serialize_into(&self, out: &mut Vec<u8>) {
        self.serialize(false, out);
    }

    /// Serializes status line + headers + body into `out`.
    fn serialize(&self, keep_alive: bool, out: &mut Vec<u8>) {
        use std::fmt::Write as _;
        let mut head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n",
            self.status,
            status_text(self.status),
            self.content_type,
            self.body.len(),
            if keep_alive { "keep-alive" } else { "close" },
        );
        if let Some(secs) = self.retry_after {
            let _ = write!(head, "Retry-After: {secs}\r\n");
        }
        if let Some(id) = &self.request_id {
            let _ = write!(head, "X-Request-Id: {id}\r\n");
        }
        head.push_str("\r\n");
        out.extend_from_slice(head.as_bytes());
        out.extend_from_slice(self.body.as_bytes());
    }
}

pub(crate) fn status_text(code: u16) -> &'static str {
    match code {
        200 => "OK",
        201 => "Created",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        409 => "Conflict",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    }
}

/// Incremental HTTP/1.1 request parser. Feed it the connection's input
/// buffer; it consumes complete lines (and, later, body bytes) in place
/// and reports one of three outcomes per step.
#[derive(Default)]
pub(crate) struct Parser {
    state: ParseState,
}

#[derive(Default)]
enum ParseState {
    /// Waiting for (more of) the request line.
    #[default]
    Start,
    /// Request line parsed; reading header lines.
    Headers {
        method: String,
        path: String,
        keep_alive: bool,
        content_length: Option<usize>,
        n_headers: usize,
        trace: Option<String>,
    },
    /// Head complete; accumulating `content_length` body bytes.
    Body {
        method: String,
        path: String,
        keep_alive: bool,
        content_length: usize,
        trace: Option<String>,
    },
}

pub(crate) enum ParseStep {
    /// No complete request yet; wait for more bytes.
    NeedMore,
    /// One complete request, consumed from the buffer.
    Complete(Request),
    /// Protocol error: answer with this status and close.
    Error(u16),
}

impl Parser {
    /// Whether a request is partially received (for 408-vs-silent-close
    /// timeout decisions).
    pub(crate) fn mid_request(&self, buffered: usize) -> bool {
        !matches!(self.state, ParseState::Start) || buffered > 0
    }

    /// Advances over `buf`, consuming what it parses. Call again after
    /// appending more bytes (or after `Complete`, for pipelining).
    pub(crate) fn step(&mut self, buf: &mut VecDeque<u8>, max_body: usize) -> ParseStep {
        loop {
            match std::mem::take(&mut self.state) {
                ParseState::Start => {
                    let line = match take_line(buf, MAX_HEADER_LINE) {
                        LineStep::Line(l) => l,
                        LineStep::NeedMore => return ParseStep::NeedMore,
                        LineStep::TooLong => return ParseStep::Error(400),
                    };
                    if line.trim().is_empty() {
                        // Tolerate stray blank lines between requests
                        // (robustness, RFC 9112 §2.2).
                        continue;
                    }
                    let mut parts = line.split_whitespace();
                    let (method, path, version) = match (parts.next(), parts.next(), parts.next()) {
                        (Some(m), Some(p), Some(v)) if v.starts_with("HTTP/1.") => (m, p, v),
                        _ => return ParseStep::Error(400),
                    };
                    self.state = ParseState::Headers {
                        method: method.to_string(),
                        path: path.to_string(),
                        keep_alive: version == "HTTP/1.1",
                        content_length: None,
                        n_headers: 0,
                        trace: None,
                    };
                }
                ParseState::Headers {
                    method,
                    path,
                    mut keep_alive,
                    mut content_length,
                    mut n_headers,
                    mut trace,
                } => {
                    let line = match take_line(buf, MAX_HEADER_LINE) {
                        LineStep::Line(l) => l,
                        LineStep::NeedMore => {
                            self.state = ParseState::Headers {
                                method,
                                path,
                                keep_alive,
                                content_length,
                                n_headers,
                                trace,
                            };
                            return ParseStep::NeedMore;
                        }
                        LineStep::TooLong => return ParseStep::Error(400),
                    };
                    let header = line.trim_end();
                    if header.is_empty() {
                        // End of head.
                        let content_length = content_length.unwrap_or(0);
                        if content_length > max_body {
                            return ParseStep::Error(413);
                        }
                        self.state = ParseState::Body {
                            method,
                            path,
                            keep_alive,
                            content_length,
                            trace,
                        };
                        continue;
                    }
                    n_headers += 1;
                    if n_headers > MAX_HEADERS {
                        return ParseStep::Error(400);
                    }
                    if let Some((name, value)) = header.split_once(':') {
                        let value = value.trim();
                        match name.to_ascii_lowercase().as_str() {
                            "content-length" => {
                                // Request-smuggling hygiene: two
                                // Content-Length headers (even agreeing
                                // ones) mean another party in the chain may
                                // frame this request differently — reject
                                // rather than pick one. A comma-joined list
                                // inside one header fails the integer parse
                                // for the same reason.
                                if content_length.is_some() {
                                    return ParseStep::Error(400);
                                }
                                match value.parse() {
                                    Ok(n) => content_length = Some(n),
                                    Err(_) => return ParseStep::Error(400),
                                }
                            }
                            "transfer-encoding" => {
                                // We never decode chunked bodies. 501 (and
                                // closing) beats misreading the chunked
                                // stream as a fixed-length body.
                                return ParseStep::Error(501);
                            }
                            "connection" => {
                                keep_alive = !value.eq_ignore_ascii_case("close");
                            }
                            "x-request-id" => {
                                // Raw capture; validation (length, safe
                                // charset) happens when the reactor
                                // resolves the request's trace id.
                                trace = Some(value.to_string());
                            }
                            _ => {}
                        }
                    }
                    self.state = ParseState::Headers {
                        method,
                        path,
                        keep_alive,
                        content_length,
                        n_headers,
                        trace,
                    };
                }
                ParseState::Body {
                    method,
                    path,
                    keep_alive,
                    content_length,
                    trace,
                } => {
                    if buf.len() < content_length {
                        self.state = ParseState::Body {
                            method,
                            path,
                            keep_alive,
                            content_length,
                            trace,
                        };
                        return ParseStep::NeedMore;
                    }
                    let bytes: Vec<u8> = buf.drain(..content_length).collect();
                    let body = match String::from_utf8(bytes) {
                        Ok(b) => b,
                        Err(_) => return ParseStep::Error(400),
                    };
                    return ParseStep::Complete(Request {
                        method,
                        path,
                        body,
                        keep_alive,
                        trace,
                    });
                }
            }
        }
    }
}

enum LineStep {
    Line(String),
    NeedMore,
    TooLong,
}

/// Takes one `\n`-terminated line out of `buf` (at most `cap` bytes,
/// terminator included — same cap the blocking parser enforced per
/// `read_line`).
fn take_line(buf: &mut VecDeque<u8>, cap: usize) -> LineStep {
    match buf.iter().position(|&b| b == b'\n') {
        Some(idx) if idx + 1 > cap => LineStep::TooLong,
        Some(idx) => {
            let line: Vec<u8> = buf.drain(..=idx).collect();
            match String::from_utf8(line) {
                Ok(s) => LineStep::Line(s),
                Err(_) => LineStep::TooLong, // non-UTF-8 head → 400 upstream
            }
        }
        None if buf.len() > cap => LineStep::TooLong,
        None => LineStep::NeedMore,
    }
}

/// What the connection is doing right now.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ConnState {
    /// Reading (or waiting for) request bytes.
    Reading,
    /// A request was dispatched; its response will arrive via the
    /// completion queue. The stored serial guards against stale
    /// completions racing a connection reset.
    Awaiting { serial: u64 },
    /// Flushing the output buffer.
    Writing,
    /// Fatal; reactor must drop the connection.
    Closed,
}

/// Result of pumping a connection's readable side.
pub(crate) enum ReadOutcome {
    /// Nothing actionable (all buffered, no complete request).
    Progress,
    /// A complete request is ready for routing.
    Request(Request),
    /// Parse error: `queue_error` was NOT yet called — the reactor
    /// decides (it counts the error first).
    BadRequest(u16),
    /// Peer closed and nothing remains to do.
    Eof,
    /// The read stalled mid-request (`WouldBlock` with a partial request
    /// buffered) — reported so the reactor can count it.
    Stalled,
}

/// Per-request observation facts: stamped by the reactor when a parsed
/// request is dispatched, consumed when its response is delivered (HTTP
/// latency histogram + request log line + `X-Request-Id` echo).
pub(crate) struct ReqObs {
    pub trace: String,
    /// Index into [`crate::obs::ROUTES`].
    pub route: usize,
    pub method: String,
    pub path: String,
    pub received: Instant,
}

pub(crate) struct Conn {
    pub stream: TcpStream,
    pub state: ConnState,
    in_buf: VecDeque<u8>,
    parser: Parser,
    out: Vec<u8>,
    out_pos: usize,
    /// Keep-alive decision for the response currently queued/being built.
    pub keep_alive: bool,
    /// Close once the output buffer drains.
    pub close_after_write: bool,
    pub last_activity: Instant,
    /// Serial of the most recently dispatched request.
    pub serial: u64,
    /// The (read, write) interest currently registered with the poller,
    /// so the reactor only issues `epoll_ctl` on changes.
    pub registered: (bool, bool),
    /// Buffered bytes this connection has reported into the reactor's
    /// global accounting (see `Reactor::sync_buffered`).
    pub accounted: usize,
    /// Peer sent EOF; finish writing, then close.
    saw_eof: bool,
    /// Observation facts of the request currently being answered.
    pub(crate) req_obs: Option<ReqObs>,
}

impl Conn {
    pub(crate) fn new(stream: TcpStream) -> Conn {
        Conn {
            stream,
            state: ConnState::Reading,
            in_buf: VecDeque::new(),
            parser: Parser::default(),
            out: Vec::new(),
            out_pos: 0,
            keep_alive: true,
            close_after_write: false,
            last_activity: Instant::now(),
            serial: 0,
            registered: (true, false),
            accounted: 0,
            saw_eof: false,
            req_obs: None,
        }
    }

    /// Whether unsent response bytes are queued.
    pub(crate) fn wants_write(&self) -> bool {
        self.out_pos < self.out.len()
    }

    /// Whether the reactor should keep read interest. Backpressure
    /// applies at two levels: per connection, a response in flight caps
    /// pipelined read-ahead; globally, when the daemon's aggregate
    /// buffered bytes exceed their budget (`allow_grow == false`),
    /// connections that already hold a buffer's worth stop reading until
    /// the budget frees — so N slow large-body uploads are bounded by
    /// the budget, not by `N × max_body_bytes`.
    pub(crate) fn wants_read(&self, allow_grow: bool) -> bool {
        if self.saw_eof {
            return false;
        }
        if !allow_grow && self.in_buf.len() >= MAX_PIPELINED_BUFFER {
            return false;
        }
        match self.state {
            ConnState::Reading => true,
            ConnState::Awaiting { .. } | ConnState::Writing => {
                self.in_buf.len() < MAX_PIPELINED_BUFFER
            }
            ConnState::Closed => false,
        }
    }

    /// Bytes currently buffered on the read side (for the reactor's
    /// global accounting).
    pub(crate) fn buffered(&self) -> usize {
        self.in_buf.len()
    }

    /// Returns an over-grown input buffer's memory after a large body
    /// drained (a keep-alive connection must not pin its high-water mark
    /// for life).
    pub(crate) fn maybe_shrink(&mut self) {
        if self.in_buf.capacity() > 2 * MAX_PIPELINED_BUFFER
            && self.in_buf.len() < MAX_PIPELINED_BUFFER
        {
            self.in_buf.shrink_to(MAX_PIPELINED_BUFFER);
        }
    }

    /// Whether a request is partially received (408 on timeout) as
    /// opposed to the connection sitting idle between requests (silent
    /// close on timeout).
    pub(crate) fn mid_request(&self) -> bool {
        matches!(self.state, ConnState::Reading) && self.parser.mid_request(self.in_buf.len())
    }

    pub(crate) fn is_awaiting(&self, serial: u64) -> bool {
        self.state == ConnState::Awaiting { serial }
    }

    /// Pumps the readable side: drains the socket into the input buffer,
    /// then tries to complete a request. At most one request is returned
    /// per call (the reactor routes it before pumping again).
    pub(crate) fn on_readable(&mut self, max_body: usize, allow_grow: bool) -> ReadOutcome {
        let mut chunk = [0u8; 16 * 1024];
        loop {
            if !self.wants_read(allow_grow) {
                break;
            }
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    self.saw_eof = true;
                    break;
                }
                Ok(n) => {
                    self.last_activity = Instant::now();
                    self.in_buf.extend(&chunk[..n]);
                    // Opportunistically stop slurping once a full request
                    // is plausibly buffered; level-triggered epoll will
                    // re-report any remainder.
                    if n < chunk.len() {
                        break;
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.state = ConnState::Closed;
                    return ReadOutcome::Eof;
                }
            }
        }
        // Only parse when ready for a new request.
        if self.state == ConnState::Reading {
            match self.parser.step(&mut self.in_buf, max_body) {
                ParseStep::Complete(req) => return ReadOutcome::Request(req),
                ParseStep::Error(status) => return ReadOutcome::BadRequest(status),
                ParseStep::NeedMore => {}
            }
        }
        if self.saw_eof && self.state == ConnState::Reading {
            // EOF: between requests it is a clean goodbye; mid-request the
            // request can never complete. Either way, nothing more to read.
            return ReadOutcome::Eof;
        }
        if self.state == ConnState::Reading && self.mid_request() {
            // A request is partially received and this readable event did
            // not complete it — a partial receive ("read stall").
            return ReadOutcome::Stalled;
        }
        ReadOutcome::Progress
    }

    /// Queues `response` and switches to writing. `keep_alive` false (or
    /// `close_after_write`) closes once it drains.
    pub(crate) fn queue_response(&mut self, response: &Response, keep_alive: bool) {
        response.serialize(keep_alive && !self.close_after_write, &mut self.out);
        if !keep_alive {
            self.close_after_write = true;
        }
        self.state = ConnState::Writing;
    }

    /// Flushes as much output as the socket accepts. Returns `Ok(true)`
    /// when the buffer fully drained, `Ok(false)` when it stalled
    /// (`WouldBlock`, write interest needed).
    pub(crate) fn on_writable(&mut self) -> std::io::Result<bool> {
        while self.out_pos < self.out.len() {
            match self.stream.write(&self.out[self.out_pos..]) {
                Ok(0) => return Err(std::io::Error::from(ErrorKind::WriteZero)),
                Ok(n) => {
                    self.out_pos += n;
                    self.last_activity = Instant::now();
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => return Ok(false),
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        self.out.clear();
        self.out_pos = 0;
        if self.state == ConnState::Writing {
            self.state = ConnState::Reading;
        }
        Ok(true)
    }

    /// Tries to parse the next pipelined request out of already-buffered
    /// bytes (call after a response fully drained).
    pub(crate) fn next_buffered_request(&mut self, max_body: usize) -> ReadOutcome {
        debug_assert_eq!(self.state, ConnState::Reading);
        match self.parser.step(&mut self.in_buf, max_body) {
            ParseStep::Complete(req) => ReadOutcome::Request(req),
            ParseStep::Error(status) => ReadOutcome::BadRequest(status),
            ParseStep::NeedMore => {
                if self.saw_eof {
                    ReadOutcome::Eof
                } else {
                    ReadOutcome::Progress
                }
            }
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn feed(parser: &mut Parser, buf: &mut VecDeque<u8>, bytes: &[u8]) -> ParseStep {
        buf.extend(bytes);
        parser.step(buf, 1 << 20)
    }

    #[test]
    fn one_shot_request_parses() {
        let mut p = Parser::default();
        let mut buf = VecDeque::new();
        let step = feed(
            &mut p,
            &mut buf,
            b"POST /solve?async=1 HTTP/1.1\r\nHost: x\r\nContent-Length: 2\r\n\r\n{}",
        );
        let ParseStep::Complete(req) = step else {
            panic!("expected complete request");
        };
        assert_eq!(req.method, "POST");
        assert_eq!(req.route_path(), "/solve");
        assert!(req.query_flag("async"));
        assert!(!req.query_flag("sync"));
        assert_eq!(req.body, "{}");
        assert!(req.keep_alive);
        assert!(buf.is_empty());
    }

    #[test]
    fn byte_at_a_time_parses_identically() {
        let raw = b"GET /healthz HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n";
        let mut p = Parser::default();
        let mut buf = VecDeque::new();
        for (i, b) in raw.iter().enumerate() {
            match feed(&mut p, &mut buf, &[*b]) {
                ParseStep::NeedMore => assert!(i + 1 < raw.len(), "must complete at final byte"),
                ParseStep::Complete(req) => {
                    assert_eq!(i + 1, raw.len());
                    assert_eq!(req.method, "GET");
                    assert_eq!(req.path, "/healthz");
                    assert!(!req.keep_alive, "Connection: close honored");
                    return;
                }
                ParseStep::Error(s) => panic!("unexpected error {s}"),
            }
        }
        panic!("request never completed");
    }

    #[test]
    fn pipelined_requests_come_out_one_at_a_time() {
        let mut p = Parser::default();
        let mut buf = VecDeque::new();
        let step = feed(
            &mut p,
            &mut buf,
            b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n",
        );
        let ParseStep::Complete(a) = step else {
            panic!("first request");
        };
        assert_eq!(a.path, "/a");
        let ParseStep::Complete(b) = p.step(&mut buf, 1 << 20) else {
            panic!("second request");
        };
        assert_eq!(b.path, "/b");
        assert!(matches!(p.step(&mut buf, 1 << 20), ParseStep::NeedMore));
    }

    #[test]
    fn framing_hardening_is_preserved() {
        // Duplicate Content-Length (agreeing or not) → 400.
        for head in [
            "POST / HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 2\r\n\r\n",
            "POST / HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 5\r\n\r\n",
            "POST / HTTP/1.1\r\nContent-Length: 2, 2\r\n\r\n",
            "POST / HTTP/1.1\r\nContent-Length: x\r\n\r\n",
        ] {
            let mut p = Parser::default();
            let mut buf = VecDeque::new();
            assert!(
                matches!(
                    feed(&mut p, &mut buf, head.as_bytes()),
                    ParseStep::Error(400)
                ),
                "{head:?} must be a 400"
            );
        }
        // Any Transfer-Encoding → 501, even combined with Content-Length.
        for head in [
            "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
            "POST / HTTP/1.1\r\nContent-Length: 2\r\nTransfer-Encoding: chunked\r\n\r\n",
        ] {
            let mut p = Parser::default();
            let mut buf = VecDeque::new();
            assert!(
                matches!(
                    feed(&mut p, &mut buf, head.as_bytes()),
                    ParseStep::Error(501)
                ),
                "{head:?} must be a 501"
            );
        }
    }

    #[test]
    fn header_caps_enforced_incrementally() {
        // An endless no-newline drip must die at the line cap, not grow.
        let mut p = Parser::default();
        let mut buf = VecDeque::new();
        let mut died = false;
        for _ in 0..MAX_HEADER_LINE + 10 {
            match feed(&mut p, &mut buf, b"A") {
                ParseStep::NeedMore => {}
                ParseStep::Error(400) => {
                    died = true;
                    break;
                }
                other => panic!(
                    "unexpected step {:?}",
                    match other {
                        ParseStep::Complete(_) => "complete",
                        _ => "error",
                    }
                ),
            }
        }
        assert!(died, "oversized request line must 400");
        assert!(
            buf.len() <= MAX_HEADER_LINE + 10,
            "buffer must not grow unboundedly"
        );

        // Too many header lines → 400.
        let mut p = Parser::default();
        let mut buf = VecDeque::new();
        buf.extend(b"GET / HTTP/1.1\r\n".as_slice());
        let mut rejected = false;
        for i in 0..MAX_HEADERS + 2 {
            match feed(&mut p, &mut buf, format!("X-H-{i}: v\r\n").as_bytes()) {
                ParseStep::NeedMore => {}
                ParseStep::Error(400) => {
                    rejected = true;
                    break;
                }
                _ => panic!("unexpected completion"),
            }
        }
        assert!(rejected, "header count cap must hold");
    }

    #[test]
    fn oversized_body_is_413_before_buffering() {
        let mut p = Parser::default();
        let mut buf = VecDeque::new();
        buf.extend(b"POST / HTTP/1.1\r\nContent-Length: 1000000\r\n\r\n".as_slice());
        assert!(matches!(p.step(&mut buf, 1000), ParseStep::Error(413)));
    }

    #[test]
    fn bare_lf_line_endings_accepted() {
        let mut p = Parser::default();
        let mut buf = VecDeque::new();
        let step = feed(&mut p, &mut buf, b"GET /x HTTP/1.1\nHost: t\n\n");
        assert!(matches!(step, ParseStep::Complete(_)));
    }
}
