//! Fig. 1 — characterization of the must/may subgraphs.
//!
//! For each instance: the fraction of vertices and edges that *must* be
//! inspected (coreness > ω−1), that *may* be inspected (coreness ≥ ω−1),
//! and the *attached* edges touching the may set. Instances are grouped by
//! clique-core gap like the paper's (a)/(b) panels: gap-0 graphs have an
//! empty must set; gap-heavy graphs keep a substantial one.
//!
//! Run: `cargo run -p lazymc-bench --release --bin fig1 [--test]`

use lazymc_bench::cli::{pct, CommonArgs};
use lazymc_bench::Table;
use lazymc_core::{zone_analysis, Config, LazyMc};
use lazymc_order::kcore_sequential;

fn main() {
    let args = CommonArgs::parse();
    let mut rows = Vec::new();
    for inst in args.instances() {
        let g = inst.build(args.scale);
        let omega = LazyMc::new(Config::default()).solve(&g).size();
        let kc = kcore_sequential(&g);
        let z = zone_analysis(&g, &kc.coreness, omega);
        rows.push((inst.name.to_string(), z));
    }
    for (title, gap_zero) in [
        ("(a) clique-core gap zero", true),
        ("(b) gap non-zero", false),
    ] {
        let mut table = Table::new(&[
            "graph",
            "must-V",
            "may-V",
            "must-E",
            "may-E",
            "attached-E",
            "gap",
        ]);
        for (name, z) in rows
            .iter()
            .filter(|(_, z)| (z.clique_core_gap == 0) == gap_zero)
        {
            table.row(vec![
                name.clone(),
                pct(z.must_vertices),
                pct(z.may_vertices),
                pct(z.must_edges),
                pct(z.may_edges),
                pct(z.attached_edges),
                z.clique_core_gap.to_string(),
            ]);
        }
        println!("Fig. 1 {title} ({:?} scale)", args.scale);
        println!("{}", table.render());
    }
}
