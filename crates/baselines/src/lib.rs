//! Comparator algorithms for the LazyMC evaluation (paper §V-A, Table II).
//!
//! Four exact maximum clique solvers re-implemented from their papers'
//! descriptions, at the level of fidelity the evaluation needs (see
//! DESIGN.md §7 for documented simplifications):
//!
//! * [`pmc::pmc_like`] — a parallel branch-and-bound in the style of
//!   PMC \[6\]: *eager* relabelled graph construction, coreness-based
//!   heuristic, coloring-bounded search over right-neighbourhoods. The
//!   closest comparator: LazyMC minus laziness, advance filtering,
//!   early-exit intersections and algorithmic choice.
//! * [`domega::domega`] — dOmega \[7\]: solves MC through a progression of
//!   k-vertex-cover decisions over clique-core gaps, in the linear (LS)
//!   and binary-search (BS) schedules.
//! * [`brb::brb_like`] — MC-BRB \[8\] simplified: sequential
//!   branch-reduce-bound with per-node degree reductions and a
//!   degree-based heuristic (no vertex folding).
//! * [`reference::max_clique_reference`] — plain Bron–Kerbosch with
//!   pivoting; slow but independent of every optimized code path, used as
//!   the correctness oracle.

pub mod brb;
pub mod domega;
pub mod pmc;
pub mod reference;
mod shared;

pub use brb::brb_like;
pub use domega::{domega, GapSchedule};
pub use pmc::pmc_like;
pub use reference::max_clique_reference;

use lazymc_graph::CsrGraph;

/// The algorithms of the paper's Table II, as a harness-friendly enum.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algorithm {
    /// Parallel MC (PMC-like).
    Pmc,
    /// dOmega with the linear gap schedule.
    DomegaLs,
    /// dOmega with the binary-search gap schedule.
    DomegaBs,
    /// MC-BRB-like branch-reduce-bound.
    Brb,
    /// The Bron–Kerbosch oracle.
    Reference,
}

impl Algorithm {
    /// Display name matching the paper's table headers.
    pub fn name(&self) -> &'static str {
        match self {
            Algorithm::Pmc => "PMC",
            Algorithm::DomegaLs => "dOmega-LS",
            Algorithm::DomegaBs => "dOmega-BS",
            Algorithm::Brb => "MC-BRB",
            Algorithm::Reference => "reference",
        }
    }

    /// All comparators, in Table II column order.
    pub fn table2() -> [Algorithm; 4] {
        [
            Algorithm::Pmc,
            Algorithm::DomegaLs,
            Algorithm::DomegaBs,
            Algorithm::Brb,
        ]
    }
}

/// Runs the selected algorithm, returning a maximum clique (original ids).
pub fn run(alg: Algorithm, g: &CsrGraph) -> Vec<u32> {
    match alg {
        Algorithm::Pmc => pmc_like(g),
        Algorithm::DomegaLs => domega(g, GapSchedule::Linear),
        Algorithm::DomegaBs => domega(g, GapSchedule::Binary),
        Algorithm::Brb => brb_like(g),
        Algorithm::Reference => max_clique_reference(g),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lazymc_graph::gen;

    #[test]
    fn all_algorithms_agree_on_small_graphs() {
        let graphs = vec![
            gen::complete(8),
            gen::path(12),
            gen::cycle(7),
            gen::star(9),
            gen::triangulated_grid(5, 4),
            gen::planted_clique(80, 0.05, 7, 1),
            gen::caveman(5, 5, 0.05, 2),
            CsrGraph::empty(3),
        ];
        for g in graphs {
            let oracle = run(Algorithm::Reference, &g).len();
            for alg in Algorithm::table2() {
                let c = run(alg, &g);
                assert!(g.is_clique(&c), "{} returned a non-clique", alg.name());
                assert_eq!(c.len(), oracle, "{} wrong on {g:?}", alg.name());
            }
        }
    }
}
