//! Property tests: every kernel must agree with the naive sorted
//! intersection under every threshold, for hash-set and sorted-slice
//! membership backends alike.

use lazymc_hopscotch::HopscotchSet;
use lazymc_intersect::*;
use proptest::prelude::*;

fn sorted_dedup(mut v: Vec<u32>) -> Vec<u32> {
    v.sort_unstable();
    v.dedup();
    v
}

fn naive_intersection(a: &[u32], b: &[u32]) -> Vec<u32> {
    a.iter().copied().filter(|x| b.contains(x)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Contract of Alg. 3: Some(s) → s and the buffer are exact;
    /// None → the true size is <= theta.
    #[test]
    fn intersect_gt_contract(
        a in proptest::collection::vec(0u32..500, 0..80),
        b in proptest::collection::vec(0u32..500, 0..80),
        theta in 0usize..40,
    ) {
        let a = sorted_dedup(a);
        let b = sorted_dedup(b);
        let truth = naive_intersection(&a, &b);
        let bs: HopscotchSet = b.iter().collect();
        let mut out = Vec::new();
        match intersect_gt(&a, &bs, &mut out, theta) {
            Some(s) => {
                prop_assert_eq!(s, truth.len());
                prop_assert_eq!(&out, &truth);
            }
            None => prop_assert!(truth.len() <= theta,
                "early exit but |A∩B| = {} > theta = {}", truth.len(), theta),
        }
        // completeness: size > theta ⇒ must not early-exit
        if truth.len() > theta {
            let r = intersect_gt(&a, &bs, &mut out, theta);
            prop_assert_eq!(r, Some(truth.len()));
        }
    }

    #[test]
    fn intersect_size_gt_val_contract(
        a in proptest::collection::vec(0u32..500, 0..80),
        b in proptest::collection::vec(0u32..500, 0..80),
        theta in 0usize..40,
    ) {
        let a = sorted_dedup(a);
        let b = sorted_dedup(b);
        let truth = naive_intersection(&a, &b).len();
        let bs: HopscotchSet = b.iter().collect();
        match intersect_size_gt_val(&a, &bs, theta) {
            Some(s) => prop_assert_eq!(s, truth),
            None => prop_assert!(truth <= theta),
        }
    }

    /// Alg. 4 must compute exactly |A∩B| > theta — with and without the
    /// second exit, and for both membership backends.
    #[test]
    fn intersect_size_gt_bool_exact(
        a in proptest::collection::vec(0u32..300, 0..80),
        b in proptest::collection::vec(0u32..300, 0..80),
        theta in 0usize..40,
    ) {
        let a = sorted_dedup(a);
        let b = sorted_dedup(b);
        let truth = naive_intersection(&a, &b).len() > theta;
        let bs: HopscotchSet = b.iter().collect();
        prop_assert_eq!(intersect_size_gt_bool(&a, &bs, theta, true), truth);
        prop_assert_eq!(intersect_size_gt_bool(&a, &bs, theta, false), truth);
        let sl = SortedSlice(&b);
        prop_assert_eq!(intersect_size_gt_bool(&a, &sl, theta, true), truth);
        prop_assert_eq!(intersect_size_gt_bool(&a, &sl, theta, false), truth);
    }

    #[test]
    fn all_full_intersections_agree(
        a in proptest::collection::vec(0u32..1000, 0..120),
        b in proptest::collection::vec(0u32..1000, 0..120),
    ) {
        let a = sorted_dedup(a);
        let b = sorted_dedup(b);
        let truth = naive_intersection(&a, &b);
        let bs: HopscotchSet = b.iter().collect();
        let mut out = Vec::new();
        prop_assert_eq!(intersect_plain(&a, &bs, &mut out), truth.len());
        prop_assert_eq!(&out, &truth);
        prop_assert_eq!(intersect_size_plain(&a, &bs), truth.len());
        prop_assert_eq!(intersect_sorted(&a, &b, &mut out), truth.len());
        prop_assert_eq!(&out, &truth);
        prop_assert_eq!(intersect_gallop(&a, &b, &mut out), truth.len());
        prop_assert_eq!(&out, &truth);
        prop_assert_eq!(intersect_size_sorted(&a, &b), truth.len());
    }

    /// Early-exit kernels must never be *wrong* merely because the sets are
    /// heavily skewed in size (the regime they were designed for).
    #[test]
    fn skewed_sizes(
        small in proptest::collection::vec(0u32..10_000, 0..12),
        big_seed in 0u32..1000,
        theta in 0usize..12,
    ) {
        let small = sorted_dedup(small);
        let big: Vec<u32> = (0..5_000u32).map(|i| i * 2 + big_seed % 2).collect();
        let truth = naive_intersection(&small, &big).len();
        let bs: HopscotchSet = big.iter().collect();
        prop_assert_eq!(intersect_size_gt_bool(&small, &bs, theta, true), truth > theta);
        match intersect_size_gt_val(&small, &bs, theta) {
            Some(s) => prop_assert_eq!(s, truth),
            None => prop_assert!(truth <= theta),
        }
    }
}
