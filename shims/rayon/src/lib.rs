//! Offline stand-in for the subset of `rayon` this workspace uses.
//!
//! The build container has no network access to crates.io, so the
//! workspace vendors the exact API surface it needs. Semantics match
//! rayon where it matters:
//!
//! * [`Par::for_each`] — the solver's hot path — really is parallel: the
//!   items are split into one chunk per available thread and processed
//!   under [`std::thread::scope`]. Closure bounds (`Fn + Send + Sync`,
//!   `Item: Send`) mirror rayon's, so call sites are source-compatible.
//! * The remaining adaptors (`map`, `filter`, `zip`, `rev`, `copied`,
//!   `flat_map_iter`) and the other consumers (`collect`, `any`, `max`)
//!   run sequentially. They are off the hot path here; correctness is
//!   identical because rayon never promises an evaluation order.
//! * [`ThreadPoolBuilder::num_threads`] + [`ThreadPool::install`] scope a
//!   thread-count override that [`current_num_threads`] and `for_each`
//!   honour, so `Config { threads, .. }` keeps its meaning (notably
//!   `threads: 1` forces a fully sequential solve).

use std::cell::Cell;
use std::ops::{Range, RangeInclusive};

thread_local! {
    /// 0 means "no override": fall back to the machine parallelism.
    static POOL_THREADS: Cell<usize> = const { Cell::new(0) };
}

fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Number of threads parallel operations currently fan out to.
pub fn current_num_threads() -> usize {
    let t = POOL_THREADS.with(|c| c.get());
    if t == 0 {
        default_threads()
    } else {
        t
    }
}

/// Builder mirroring `rayon::ThreadPoolBuilder` (thread count only).
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

/// Error type for [`ThreadPoolBuilder::build`]; building never fails here.
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

impl ThreadPoolBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: if self.num_threads == 0 {
                default_threads()
            } else {
                self.num_threads
            },
        })
    }
}

/// A scoped thread-count override, not an actual pool of threads: workers
/// are spawned per `for_each` call under `std::thread::scope`.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Runs `op` with this pool's thread count as the ambient parallelism.
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        struct Restore(usize);
        impl Drop for Restore {
            fn drop(&mut self) {
                POOL_THREADS.with(|c| c.set(self.0));
            }
        }
        let prev = POOL_THREADS.with(|c| c.replace(self.num_threads));
        let _restore = Restore(prev);
        op()
    }

    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }
}

/// A "parallel" iterator: a thin wrapper over a std iterator whose
/// consuming `for_each` fans out across threads.
pub struct Par<I>(I);

impl<I: Iterator> Par<I> {
    pub fn map<O, F: FnMut(I::Item) -> O>(self, f: F) -> Par<std::iter::Map<I, F>> {
        Par(self.0.map(f))
    }

    pub fn filter<P: FnMut(&I::Item) -> bool>(self, p: P) -> Par<std::iter::Filter<I, P>> {
        Par(self.0.filter(p))
    }

    pub fn rev(self) -> Par<std::iter::Rev<I>>
    where
        I: DoubleEndedIterator,
    {
        Par(self.0.rev())
    }

    pub fn copied<'a, T>(self) -> Par<std::iter::Copied<I>>
    where
        T: 'a + Copy,
        I: Iterator<Item = &'a T>,
    {
        Par(self.0.copied())
    }

    pub fn flat_map_iter<U, F>(self, f: F) -> Par<std::iter::FlatMap<I, U, F>>
    where
        U: IntoIterator,
        F: FnMut(I::Item) -> U,
    {
        Par(self.0.flat_map(f))
    }

    pub fn zip<J: IntoParallelIterator>(self, other: J) -> Par<std::iter::Zip<I, J::IntoIter>> {
        Par(self.0.zip(other.into_par_iter().0))
    }

    /// Parallel consumer: one chunk per thread under `std::thread::scope`.
    /// The calling thread works on the first chunk itself; a panic in any
    /// worker propagates when the scope exits, as with rayon.
    pub fn for_each<F>(self, f: F)
    where
        I::Item: Send,
        F: Fn(I::Item) + Send + Sync,
    {
        let mut items: Vec<I::Item> = self.0.collect();
        let threads = current_num_threads().clamp(1, items.len().max(1));
        if threads <= 1 {
            for item in items {
                f(item);
            }
            return;
        }
        let chunk = items.len().div_ceil(threads);
        let mut chunks: Vec<Vec<I::Item>> = Vec::with_capacity(threads);
        while items.len() > chunk {
            let tail = items.split_off(items.len() - chunk);
            chunks.push(tail);
        }
        let mine = items;
        let inherited = current_num_threads();
        std::thread::scope(|s| {
            let f = &f;
            for ch in chunks {
                s.spawn(move || {
                    POOL_THREADS.with(|c| c.set(inherited));
                    for item in ch {
                        f(item);
                    }
                });
            }
            for item in mine {
                f(item);
            }
        });
    }

    pub fn any<P: FnMut(I::Item) -> bool>(self, mut p: P) -> bool {
        let mut it = self.0;
        it.any(&mut p)
    }

    pub fn max(self) -> Option<I::Item>
    where
        I::Item: Ord,
    {
        self.0.max()
    }

    pub fn collect<C: FromIterator<I::Item>>(self) -> C {
        self.0.collect()
    }

    pub fn count(self) -> usize {
        self.0.count()
    }

    pub fn sum<S: std::iter::Sum<I::Item>>(self) -> S {
        self.0.sum()
    }
}

/// Conversion into a [`Par`] iterator (rayon's `IntoParallelIterator`).
pub trait IntoParallelIterator {
    type Item;
    type IntoIter: Iterator<Item = Self::Item>;
    fn into_par_iter(self) -> Par<Self::IntoIter>;
}

impl<I: Iterator> IntoParallelIterator for Par<I> {
    type Item = I::Item;
    type IntoIter = I;
    fn into_par_iter(self) -> Par<I> {
        self
    }
}

impl<T> IntoParallelIterator for Vec<T> {
    type Item = T;
    type IntoIter = std::vec::IntoIter<T>;
    fn into_par_iter(self) -> Par<Self::IntoIter> {
        Par(self.into_iter())
    }
}

impl<T> IntoParallelIterator for Range<T>
where
    Range<T>: Iterator<Item = T>,
{
    type Item = T;
    type IntoIter = Range<T>;
    fn into_par_iter(self) -> Par<Self::IntoIter> {
        Par(self)
    }
}

impl<T> IntoParallelIterator for RangeInclusive<T>
where
    RangeInclusive<T>: Iterator<Item = T>,
{
    type Item = T;
    type IntoIter = RangeInclusive<T>;
    fn into_par_iter(self) -> Par<Self::IntoIter> {
        Par(self)
    }
}

/// `.par_iter()` on slices (and, via deref, `Vec`).
pub trait ParallelSlice<T> {
    fn par_iter(&self) -> Par<std::slice::Iter<'_, T>>;
}

impl<T> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> Par<std::slice::Iter<'_, T>> {
        Par(self.iter())
    }
}

/// `.par_iter_mut()` / `.par_sort_unstable()` on mutable slices.
pub trait ParallelSliceMut<T> {
    fn par_iter_mut(&mut self) -> Par<std::slice::IterMut<'_, T>>;
    fn par_sort_unstable(&mut self)
    where
        T: Ord;
}

impl<T> ParallelSliceMut<T> for [T] {
    fn par_iter_mut(&mut self) -> Par<std::slice::IterMut<'_, T>> {
        Par(self.iter_mut())
    }

    fn par_sort_unstable(&mut self)
    where
        T: Ord,
    {
        self.sort_unstable();
    }
}

pub mod prelude {
    pub use crate::{IntoParallelIterator, Par, ParallelSlice, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn for_each_visits_everything() {
        let hits: Vec<AtomicUsize> = (0..10_000).map(|_| AtomicUsize::new(0)).collect();
        (0..10_000usize).into_par_iter().for_each(|i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn adaptors_match_sequential() {
        let v: Vec<u32> = (0..100).collect();
        let doubled: Vec<u32> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled[99], 198);
        assert_eq!(v.par_iter().copied().max(), Some(99));
        assert!((0..100u32).into_par_iter().any(|x| x == 57));
        let evens: Vec<u32> = (0..10u32).into_par_iter().filter(|x| x % 2 == 0).collect();
        assert_eq!(evens, vec![0, 2, 4, 6, 8]);
    }

    #[test]
    fn install_scopes_thread_count() {
        let pool = crate::ThreadPoolBuilder::new()
            .num_threads(3)
            .build()
            .unwrap();
        pool.install(|| assert_eq!(crate::current_num_threads(), 3));
        assert_ne!(crate::current_num_threads(), 0);
    }

    #[test]
    fn zip_and_rev() {
        let a = [1u32, 2, 3];
        let b = vec![10u32, 20, 30];
        let sums: Vec<u32> = a
            .par_iter()
            .zip(b.into_par_iter())
            .map(|(x, y)| x + y)
            .collect();
        assert_eq!(sums, vec![11, 22, 33]);
        let r: Vec<u32> = (0..3u32).into_par_iter().rev().collect();
        assert_eq!(r, vec![2, 1, 0]);
    }
}
