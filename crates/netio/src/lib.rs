//! lazymc-netio — dependency-free event-loop primitives for the daemon.
//!
//! The service's reactor needs exactly three things from the OS, and this
//! crate provides them with no crates.io dependencies (raw `extern "C"`
//! declarations against the libc `std` already links):
//!
//! * [`Poller`] — an epoll instance: register nonblocking fds with a
//!   caller-chosen `u64` token and level- or edge-triggered [`Interest`],
//!   then [`Poller::wait`] for readiness events.
//! * [`Wakeup`] — an `eventfd` that other threads (solver workers, the
//!   shutdown path) write to in order to pop the reactor out of
//!   `epoll_wait`; the reactor drains it and consults its completion
//!   queues.
//! * Socket helpers — [`set_nonblocking`] plus the [`sockopt`] module
//!   (`SO_SNDBUF`/`SO_RCVBUF`), the latter mostly so tests can force
//!   partial reads and writes with tiny kernel buffers.
//!
//! Linux-only by design: epoll *is* the portability boundary, and the
//! deployment target (and CI) is Linux. Nothing here spawns threads or
//! owns sockets — ownership stays with the caller, the poller works with
//! raw fds.

// The reactor's syscall layer must not die of an avoidable panic; the
// same bar the service crate holds (see lazymc-service's lib.rs).
#![deny(clippy::unwrap_used)]

#[cfg(not(target_os = "linux"))]
compile_error!("lazymc-netio is Linux-only (epoll); port Poller to kqueue/IOCP to build here");

mod sys;

use std::io;
use std::os::fd::RawFd;
use std::time::Duration;

/// What readiness to watch an fd for, and how.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    pub readable: bool,
    pub writable: bool,
    /// Edge-triggered (`EPOLLET`): one event per readiness *transition*;
    /// the caller must drain until `WouldBlock`. Level-triggered (the
    /// default) re-reports readiness every `wait` until consumed.
    pub edge: bool,
}

impl Interest {
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
        edge: false,
    };
    pub const WRITE: Interest = Interest {
        readable: false,
        writable: true,
        edge: false,
    };
    pub const READ_WRITE: Interest = Interest {
        readable: true,
        writable: true,
        edge: false,
    };

    pub fn edge(mut self) -> Interest {
        self.edge = true;
        self
    }

    fn bits(self) -> u32 {
        let mut bits = 0;
        if self.readable {
            // RDHUP only alongside read interest: a half-closed peer is
            // interesting exactly while we still consume its bytes —
            // subscribing to it unconditionally would level-trigger
            // forever on connections that are done reading.
            bits |= sys::EPOLLIN | sys::EPOLLRDHUP;
        }
        if self.writable {
            bits |= sys::EPOLLOUT;
        }
        if self.edge {
            bits |= sys::EPOLLET;
        }
        bits
    }
}

/// One readiness event out of [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the fd was registered with.
    pub token: u64,
    pub readable: bool,
    pub writable: bool,
    /// Peer closed its write side or the whole connection
    /// (EPOLLHUP/EPOLLRDHUP) — drain pending bytes, then close.
    pub hangup: bool,
    /// The connection is fully closed or reset (EPOLLHUP proper — the
    /// kernel reports this regardless of interest, so callers must drop
    /// the fd rather than keep polling it).
    pub closed: bool,
    /// Error condition on the fd (EPOLLERR).
    pub error: bool,
}

/// Reusable event buffer for [`Poller::wait`].
pub struct Events {
    buf: Vec<sys::epoll_event>,
    len: usize,
}

impl Events {
    /// A buffer receiving at most `capacity` events per wait (≥ 1).
    pub fn with_capacity(capacity: usize) -> Events {
        Events {
            buf: vec![sys::epoll_event { events: 0, data: 0 }; capacity.max(1)],
            len: 0,
        }
    }

    pub fn iter(&self) -> impl Iterator<Item = Event> + '_ {
        self.buf[..self.len].iter().map(|e| {
            // Copy out of the (possibly packed) struct before touching
            // the fields — references into packed fields are UB.
            let bits = e.events;
            let token = e.data;
            Event {
                token,
                readable: bits & (sys::EPOLLIN | sys::EPOLLHUP | sys::EPOLLRDHUP) != 0,
                writable: bits & sys::EPOLLOUT != 0,
                hangup: bits & (sys::EPOLLHUP | sys::EPOLLRDHUP) != 0,
                closed: bits & sys::EPOLLHUP != 0,
                error: bits & sys::EPOLLERR != 0,
            }
        })
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// An epoll instance. Registered fds stay owned by the caller; dropping
/// the poller closes only the epoll fd itself.
pub struct Poller {
    epfd: RawFd,
}

// The epoll fd is just an fd; all operations on it are kernel-side
// thread-safe (epoll_ctl vs epoll_wait included).
unsafe impl Send for Poller {}
unsafe impl Sync for Poller {}

impl Poller {
    pub fn new() -> io::Result<Poller> {
        let epfd = unsafe { sys::epoll_create1(sys::EPOLL_CLOEXEC) };
        if epfd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Poller { epfd })
    }

    fn ctl(&self, op: i32, fd: RawFd, interest: Option<Interest>, token: u64) -> io::Result<()> {
        let mut ev = sys::epoll_event {
            events: interest.map_or(0, Interest::bits),
            data: token,
        };
        let rc = unsafe { sys::epoll_ctl(self.epfd, op, fd, &mut ev) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Starts watching `fd` (which should already be nonblocking) for
    /// `interest`, tagging its events with `token`.
    pub fn register(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        lazymc_chaos::io_point!("netio.register");
        self.ctl(sys::EPOLL_CTL_ADD, fd, Some(interest), token)
    }

    /// Changes the interest set (and/or token) of a registered fd.
    pub fn modify(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(sys::EPOLL_CTL_MOD, fd, Some(interest), token)
    }

    /// Stops watching `fd`. Closing an fd deregisters it implicitly, but
    /// only once every duplicate of the description is closed — explicit
    /// deregistration keeps that honest.
    pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
        self.ctl(sys::EPOLL_CTL_DEL, fd, None, 0)
    }

    /// Blocks until at least one registered fd is ready, `timeout`
    /// expires (`None` = forever), or a signal lands (reported as zero
    /// events, not an error). Returns the number of events filled.
    pub fn wait(&self, events: &mut Events, timeout: Option<Duration>) -> io::Result<usize> {
        // Fault point for reactor/scheduler latency and error-path tests:
        // `delay:<ms>` stalls the event loop, `eio` exercises callers'
        // wait-error handling.
        lazymc_chaos::io_point!("netio.wait");
        let timeout_ms: i32 = match timeout {
            // Round *up* so a 100µs timeout cannot spin at timeout 0.
            Some(t) => {
                t.as_millis().min(i32::MAX as u128) as i32
                    + if t.subsec_millis() as u128 * 1_000_000 != t.subsec_nanos() as u128 {
                        1
                    } else {
                        0
                    }
            }
            None => -1,
        };
        let n = unsafe {
            sys::epoll_wait(
                self.epfd,
                events.buf.as_mut_ptr(),
                events.buf.len() as i32,
                timeout_ms,
            )
        };
        if n < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                events.len = 0;
                return Ok(0);
            }
            return Err(err);
        }
        events.len = n as usize;
        Ok(events.len)
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        unsafe { sys::close(self.epfd) };
    }
}

/// An `eventfd`-backed doorbell: any thread calls [`Wakeup::notify`] to
/// make the poller's next (or current) [`Poller::wait`] return with this
/// fd readable; the reactor then [`Wakeup::drain`]s it and checks its
/// queues. Notifications coalesce (n notifies ≥ 1 wakeups), which is
/// exactly the semantics a completion queue wants.
pub struct Wakeup {
    fd: RawFd,
}

unsafe impl Send for Wakeup {}
unsafe impl Sync for Wakeup {}

impl Wakeup {
    pub fn new() -> io::Result<Wakeup> {
        let fd = unsafe { sys::eventfd(0, sys::EFD_CLOEXEC | sys::EFD_NONBLOCK) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Wakeup { fd })
    }

    /// The fd to register with the poller (read interest).
    pub fn fd(&self) -> RawFd {
        self.fd
    }

    /// Rings the doorbell. Never blocks: if the counter is already at its
    /// max (impossible in practice), the pending wakeup it implies is
    /// sufficient anyway.
    pub fn notify(&self) {
        let one: u64 = 1;
        unsafe {
            sys::write(self.fd, (&one as *const u64).cast(), 8);
        }
    }

    /// Clears pending notifications. Returns whether any were pending.
    pub fn drain(&self) -> bool {
        let mut count: u64 = 0;
        let n = unsafe { sys::read(self.fd, (&mut count as *mut u64).cast(), 8) };
        n == 8 && count > 0
    }
}

impl Drop for Wakeup {
    fn drop(&mut self) {
        unsafe { sys::close(self.fd) };
    }
}

/// A `signalfd`-backed signal receiver for the drain lifecycle.
///
/// [`SignalFd::new`] blocks the requested signals on the *calling thread*
/// (threads spawned afterwards inherit the mask) and opens a nonblocking
/// `signalfd` that becomes readable when one of them is delivered — so a
/// reactor can watch SIGTERM with the same epoll loop that watches
/// sockets, instead of an async-signal-unsafe handler. Call it early,
/// before spawning any thread that must not steal the signal.
pub struct SignalFd {
    fd: RawFd,
}

unsafe impl Send for SignalFd {}
unsafe impl Sync for SignalFd {}

impl SignalFd {
    /// Blocks `signals` for this thread (and all threads spawned after)
    /// and returns a nonblocking fd that reports their delivery.
    pub fn new(signals: &[i32]) -> io::Result<SignalFd> {
        let mut mask = sys::sigset_t { bits: [0; 16] };
        unsafe {
            sys::sigemptyset(&mut mask);
            for &sig in signals {
                sys::sigaddset(&mut mask, sig);
            }
            if sys::pthread_sigmask(sys::SIG_BLOCK, &mask, std::ptr::null_mut()) != 0 {
                return Err(io::Error::last_os_error());
            }
            let fd = sys::signalfd(-1, &mask, sys::SFD_CLOEXEC | sys::SFD_NONBLOCK);
            if fd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(SignalFd { fd })
        }
    }

    /// SIGTERM + SIGINT: the two "please stop" signals an operator or
    /// init system sends.
    pub fn for_shutdown() -> io::Result<SignalFd> {
        SignalFd::new(&[sys::SIGTERM, sys::SIGINT])
    }

    /// The fd to register with the poller (read interest).
    pub fn fd(&self) -> RawFd {
        self.fd
    }

    /// Consumes pending signals; `true` if at least one was delivered.
    pub fn drain(&self) -> bool {
        let mut any = false;
        loop {
            let mut info = sys::signalfd_siginfo { bytes: [0; 128] };
            let n = unsafe {
                sys::read(
                    self.fd,
                    (&mut info as *mut sys::signalfd_siginfo).cast(),
                    std::mem::size_of::<sys::signalfd_siginfo>(),
                )
            };
            if n == std::mem::size_of::<sys::signalfd_siginfo>() as isize {
                any = true;
            } else {
                return any;
            }
        }
    }
}

impl Drop for SignalFd {
    fn drop(&mut self) {
        unsafe { sys::close(self.fd) };
    }
}

/// Switches an fd in or out of nonblocking mode.
pub fn set_nonblocking(fd: RawFd, nonblocking: bool) -> io::Result<()> {
    let flags = unsafe { sys::fcntl(fd, sys::F_GETFL, 0) };
    if flags < 0 {
        return Err(io::Error::last_os_error());
    }
    let flags = if nonblocking {
        flags | sys::O_NONBLOCK
    } else {
        flags & !sys::O_NONBLOCK
    };
    if unsafe { sys::fcntl(fd, sys::F_SETFL, flags) } < 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(())
}

/// Kernel socket-buffer knobs. The daemon uses these for tuning; the
/// partial-I/O tests use them to make the kernel buffers tiny enough that
/// a response provably cannot be written in one syscall.
pub mod sockopt {
    use super::sys;
    use std::io;
    use std::os::fd::RawFd;

    fn set(fd: RawFd, opt: i32, bytes: usize) -> io::Result<()> {
        let v = bytes as i32;
        let rc = unsafe {
            sys::setsockopt(
                fd,
                sys::SOL_SOCKET,
                opt,
                (&v as *const i32).cast(),
                std::mem::size_of::<i32>() as u32,
            )
        };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    fn get(fd: RawFd, opt: i32) -> io::Result<usize> {
        let mut v: i32 = 0;
        let mut len = std::mem::size_of::<i32>() as u32;
        let rc = unsafe {
            sys::getsockopt(
                fd,
                sys::SOL_SOCKET,
                opt,
                (&mut v as *mut i32).cast(),
                &mut len,
            )
        };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(v.max(0) as usize)
    }

    /// Requests a receive-buffer size (the kernel doubles and clamps it).
    pub fn set_recv_buf(fd: RawFd, bytes: usize) -> io::Result<()> {
        set(fd, sys::SO_RCVBUF, bytes)
    }

    /// Requests a send-buffer size (the kernel doubles and clamps it).
    pub fn set_send_buf(fd: RawFd, bytes: usize) -> io::Result<()> {
        set(fd, sys::SO_SNDBUF, bytes)
    }

    pub fn recv_buf(fd: RawFd) -> io::Result<usize> {
        get(fd, sys::SO_RCVBUF)
    }

    pub fn send_buf(fd: RawFd) -> io::Result<usize> {
        get(fd, sys::SO_SNDBUF)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;

    const LISTENER: u64 = 1;
    const CLIENT: u64 = 2;
    const DOORBELL: u64 = 3;

    #[test]
    fn listener_accept_and_readability() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        let poller = Poller::new().unwrap();
        poller
            .register(listener.as_raw_fd(), LISTENER, Interest::READ)
            .unwrap();
        let mut events = Events::with_capacity(8);

        // Nothing pending: a short wait times out with zero events.
        assert_eq!(
            poller
                .wait(&mut events, Some(Duration::from_millis(10)))
                .unwrap(),
            0
        );

        // A connect makes the listener readable.
        let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        let ev: Vec<Event> = events.iter().collect();
        assert!(ev.iter().any(|e| e.token == LISTENER && e.readable));

        // Accept, register the server side, and see client bytes arrive.
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();
        poller
            .register(server.as_raw_fd(), CLIENT, Interest::READ_WRITE)
            .unwrap();
        client.write_all(b"ping").unwrap();
        let mut saw_read = false;
        for _ in 0..50 {
            poller
                .wait(&mut events, Some(Duration::from_millis(100)))
                .unwrap();
            if events.iter().any(|e| e.token == CLIENT && e.readable) {
                saw_read = true;
                break;
            }
        }
        assert!(saw_read, "client bytes must surface as readability");
        let mut buf = [0u8; 4];
        (&server).read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"ping");

        // Hangup is reported once the client goes away.
        drop(client);
        let mut saw_hup = false;
        for _ in 0..50 {
            poller
                .wait(&mut events, Some(Duration::from_millis(100)))
                .unwrap();
            if events.iter().any(|e| e.token == CLIENT && e.hangup) {
                saw_hup = true;
                break;
            }
        }
        assert!(saw_hup, "peer close must surface as hangup");
        poller.deregister(server.as_raw_fd()).unwrap();
    }

    #[test]
    fn wakeup_crosses_threads_and_coalesces() {
        let poller = Poller::new().unwrap();
        let wakeup = std::sync::Arc::new(Wakeup::new().unwrap());
        poller
            .register(wakeup.fd(), DOORBELL, Interest::READ)
            .unwrap();
        let mut events = Events::with_capacity(4);

        let w = wakeup.clone();
        let t = std::thread::spawn(move || {
            for _ in 0..100 {
                w.notify();
            }
        });
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(n >= 1);
        assert!(events.iter().any(|e| e.token == DOORBELL && e.readable));
        t.join().unwrap();
        assert!(wakeup.drain(), "notifications were pending");
        assert!(!wakeup.drain(), "drain clears the counter");
        // After draining, the doorbell is quiet again.
        assert_eq!(
            poller
                .wait(&mut events, Some(Duration::from_millis(10)))
                .unwrap(),
            0
        );
    }

    #[test]
    fn edge_triggered_fires_once_per_transition() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();
        let poller = Poller::new().unwrap();
        poller
            .register(server.as_raw_fd(), CLIENT, Interest::READ.edge())
            .unwrap();
        let mut events = Events::with_capacity(4);

        client.write_all(b"x").unwrap();
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(n, 1);
        // Without consuming the byte, a level-triggered poll would fire
        // again; edge-triggered stays silent until new bytes arrive.
        assert_eq!(
            poller
                .wait(&mut events, Some(Duration::from_millis(20)))
                .unwrap(),
            0,
            "edge-triggered must not re-report unconsumed readiness"
        );
        client.write_all(b"y").unwrap();
        assert_eq!(
            poller
                .wait(&mut events, Some(Duration::from_secs(5)))
                .unwrap(),
            1,
            "a new byte is a new edge"
        );
    }

    #[test]
    fn nonblocking_and_sockopt_helpers() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server, _) = listener.accept().unwrap();

        set_nonblocking(server.as_raw_fd(), true).unwrap();
        let mut buf = [0u8; 8];
        let err = (&server).read(&mut buf).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::WouldBlock);
        set_nonblocking(server.as_raw_fd(), false).unwrap();

        // The kernel clamps/doubles, so assert the shrink direction, not
        // an exact value.
        let fd = client.as_raw_fd();
        sockopt::set_recv_buf(fd, 2048).unwrap();
        sockopt::set_send_buf(fd, 2048).unwrap();
        assert!(sockopt::recv_buf(fd).unwrap() < 1 << 20);
        assert!(sockopt::send_buf(fd).unwrap() < 1 << 20);
    }

    #[test]
    fn signalfd_observes_a_raised_signal() {
        extern "C" {
            fn raise(sig: i32) -> i32;
        }
        const SIGTERM_TOKEN: u64 = 9;
        // SIGTERM is blocked for this thread only, so raise() (which
        // targets the calling thread) must surface on the fd instead of
        // killing the test runner.
        let sig = SignalFd::for_shutdown().unwrap();
        let poller = Poller::new().unwrap();
        poller
            .register(sig.fd(), SIGTERM_TOKEN, Interest::READ)
            .unwrap();
        let mut events = Events::with_capacity(4);
        assert!(!sig.drain(), "no signal pending yet");
        unsafe { raise(15) };
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events
            .iter()
            .any(|e| e.token == SIGTERM_TOKEN && e.readable));
        assert!(sig.drain(), "the raised SIGTERM must be consumable");
        assert!(!sig.drain(), "drain clears the queue");
    }
}
